module Prng = Legion_util.Prng
module Value = Legion_wire.Value
module Event = Legion_obs.Event
module Recorder = Legion_obs.Recorder

type host_id = int
type site_id = int

(* Registration handle: the tag says which list to search on removal. *)
type watcher = Host_watcher of int | Partition_watcher of int

type latency = {
  intra_host : float;
  intra_site : float;
  inter_site : float;
  jitter : float;
}

let default_latency =
  { intra_host = 5e-6; intra_site = 5e-4; inter_site = 4e-2; jitter = 0.1 }

type host = {
  site : site_id;
  h_name : string;
  mutable up : bool;
  mutable receiver : (src:host_id -> Value.t -> unit) option;
}

(* Per-site host index: a growable int vector, appended in add_host
   order so it stays ascending (host ids only grow). *)
type hostvec = { mutable ids : int array; mutable n : int }

(* In-flight message, pooled: the engine carries only the slot index
   (see Engine.post_token), so a delivery costs no closure and no
   fresh record. *)
type delivery = {
  mutable d_src : host_id;
  mutable d_dst : host_id;
  mutable d_payload : Value.t;
}

type t = {
  sim : Legion_sim.Engine.t;
  prng : Prng.t;
  latency : latency;
  mutable sites : string array;
  mutable site_hosts : hostvec array;  (* parallel to [sites] *)
  mutable host_tbl : host array;
  mutable n_sites : int;
  mutable n_hosts : int;
  mutable deliveries : delivery array;  (* token-indexed in-flight pool *)
  mutable free_slots : int array;  (* free-slot stack into [deliveries] *)
  mutable free_len : int;
  mutable n_deliveries : int;  (* slots ever handed out *)
  mutable drop_rate : float;
  mutable partitions : (site_id * site_id) list;
  mutable tap : (src:host_id -> dst:host_id -> Value.t -> unit) option;
  mutable host_watcher : (host_id -> up:bool -> unit) option;
  mutable watcher_seq : int;
  mutable host_watchers : (int * (host_id -> up:bool -> unit)) list;
  mutable partition_watchers :
    (int * (site_id -> site_id -> cut:bool -> unit)) list;
  mutable obs : Recorder.t option;
  mutable sent : int;
  mutable bytes : int;
  mutable dropped : int;
  mutable tier_host : int;
  mutable tier_site : int;
  mutable tier_wan : int;
}

let new_hostvec () = { ids = [||]; n = 0 }

let hostvec_add v h =
  if v.n = Array.length v.ids then begin
    let cap = Stdlib.max 8 (2 * v.n) in
    let bigger = Array.make cap 0 in
    Array.blit v.ids 0 bigger 0 v.n;
    v.ids <- bigger
  end;
  v.ids.(v.n) <- h;
  v.n <- v.n + 1

let rec deliver_token t tok =
  let d = t.deliveries.(tok) in
  let src = d.d_src and dst = d.d_dst and payload = d.d_payload in
  d.d_payload <- Value.Unit;
  (* drop the reference *)
  if t.free_len = Array.length t.free_slots then begin
    let bigger = Array.make (Stdlib.max 8 (2 * t.free_len)) 0 in
    Array.blit t.free_slots 0 bigger 0 t.free_len;
    t.free_slots <- bigger
  end;
  t.free_slots.(t.free_len) <- tok;
  t.free_len <- t.free_len + 1;
  let h = t.host_tbl.(dst) in
  if not h.up then drop_msg t ~src ~dst ~at:dst Event.Dst_down
  else
    match h.receiver with
    | None -> drop_msg t ~src ~dst ~at:dst Event.No_receiver
    | Some f ->
        emit t ~host:dst (Event.Deliver { src; dst });
        f ~src payload

and drop_msg t ~src ~dst ~at reason =
  t.dropped <- t.dropped + 1;
  emit t ~host:at (Event.Drop { src; dst; reason })

and emit t ~host kind =
  match t.obs with
  | None -> ()
  | Some r -> Recorder.emit r ~host ~site:t.host_tbl.(host).site kind

let create ~sim ~prng ?(latency = default_latency) ?obs () =
  let t =
  {
    sim;
    prng;
    latency;
    sites = Array.make 8 "";
    site_hosts = Array.init 8 (fun _ -> new_hostvec ());
    host_tbl = [||];
    n_sites = 0;
    n_hosts = 0;
    deliveries = [||];
    free_slots = [||];
    free_len = 0;
    n_deliveries = 0;
    drop_rate = 0.0;
    partitions = [];
    tap = None;
    host_watcher = None;
    watcher_seq = 0;
    host_watchers = [];
    partition_watchers = [];
    obs;
    sent = 0;
    bytes = 0;
    dropped = 0;
    tier_host = 0;
    tier_site = 0;
    tier_wan = 0;
  }
  in
  (* Sole consumer of the engine's token dispatch: every Network owns
     its engine (System.boot and all tests build one per net). *)
  Legion_sim.Engine.set_dispatch sim (deliver_token t);
  t

let sim t = t.sim

let add_site t ~name =
  if t.n_sites = Array.length t.sites then begin
    let bigger = Array.make (2 * t.n_sites) "" in
    Array.blit t.sites 0 bigger 0 t.n_sites;
    t.sites <- bigger;
    let more = Array.init (2 * t.n_sites) (fun _ -> new_hostvec ()) in
    Array.blit t.site_hosts 0 more 0 t.n_sites;
    t.site_hosts <- more
  end;
  t.sites.(t.n_sites) <- name;
  t.n_sites <- t.n_sites + 1;
  t.n_sites - 1

let add_host t ~site ~name =
  if site < 0 || site >= t.n_sites then invalid_arg "Network.add_host: bad site";
  let h = { site; h_name = name; up = true; receiver = None } in
  if t.n_hosts = Array.length t.host_tbl then begin
    let cap = Stdlib.max 8 (2 * t.n_hosts) in
    let bigger = Array.make cap h in
    Array.blit t.host_tbl 0 bigger 0 t.n_hosts;
    t.host_tbl <- bigger
  end;
  t.host_tbl.(t.n_hosts) <- h;
  hostvec_add t.site_hosts.(site) t.n_hosts;
  t.n_hosts <- t.n_hosts + 1;
  t.n_hosts - 1

let site_count t = t.n_sites
let host_count t = t.n_hosts
let hosts t = List.init t.n_hosts (fun i -> i)

let check_host t h =
  if h < 0 || h >= t.n_hosts then invalid_arg "Network: bad host id"

let hosts_of_site t s =
  if s < 0 || s >= t.n_sites then []
  else
    let v = t.site_hosts.(s) in
    List.init v.n (fun i -> v.ids.(i))

let site_of t h =
  check_host t h;
  t.host_tbl.(h).site

let host_name t h =
  check_host t h;
  t.host_tbl.(h).h_name

let site_name t s =
  if s < 0 || s >= t.n_sites then invalid_arg "Network: bad site id";
  t.sites.(s)

let set_host_up t h up =
  check_host t h;
  let was = t.host_tbl.(h).up in
  t.host_tbl.(h).up <- up;
  if was <> up then begin
    (match t.host_watcher with None -> () | Some f -> f h ~up);
    List.iter (fun (_, f) -> f h ~up) t.host_watchers
  end

let set_host_watcher t f = t.host_watcher <- f

let next_watcher_id t =
  t.watcher_seq <- t.watcher_seq + 1;
  t.watcher_seq

let add_host_watcher t f =
  let id = next_watcher_id t in
  t.host_watchers <- t.host_watchers @ [ (id, f) ];
  Host_watcher id

let remove_watcher t = function
  | Host_watcher id ->
      t.host_watchers <- List.filter (fun (i, _) -> i <> id) t.host_watchers
  | Partition_watcher id ->
      t.partition_watchers <-
        List.filter (fun (i, _) -> i <> id) t.partition_watchers

let watcher_count t =
  List.length t.host_watchers + List.length t.partition_watchers

let host_is_up t h =
  check_host t h;
  t.host_tbl.(h).up

let set_drop_rate t r =
  if r < 0.0 || r > 1.0 then invalid_arg "Network.set_drop_rate";
  t.drop_rate <- r

let drop_rate t = t.drop_rate

let norm_pair a b = if a <= b then (a, b) else (b, a)

let set_partitioned t a b cut =
  if a < 0 || a >= t.n_sites || b < 0 || b >= t.n_sites then
    invalid_arg "Network.set_partitioned: bad site id";
  let pair = norm_pair a b in
  let was = List.mem pair t.partitions in
  let without = List.filter (fun p -> p <> pair) t.partitions in
  let now = cut && a <> b in
  t.partitions <- (if now then pair :: without else without);
  if was <> now then
    List.iter
      (fun (_, f) -> f (fst pair) (snd pair) ~cut:now)
      t.partition_watchers

let add_partition_watcher t f =
  let id = next_watcher_id t in
  t.partition_watchers <- t.partition_watchers @ [ (id, f) ];
  Partition_watcher id

let is_partitioned t a b =
  List.mem (norm_pair a b) t.partitions

let set_receiver t h f =
  check_host t h;
  t.host_tbl.(h).receiver <- Some f

let latency_between t a b =
  check_host t a;
  check_host t b;
  if a = b then t.latency.intra_host
  else if t.host_tbl.(a).site = t.host_tbl.(b).site then t.latency.intra_site
  else t.latency.inter_site

let set_tap t tap = t.tap <- tap
let set_obs t obs = t.obs <- obs
let obs t = t.obs

(* Grab a pooled in-flight slot; returns its token. *)
let alloc_delivery t ~src ~dst payload =
  if t.free_len > 0 then begin
    t.free_len <- t.free_len - 1;
    let tok = t.free_slots.(t.free_len) in
    let d = t.deliveries.(tok) in
    d.d_src <- src;
    d.d_dst <- dst;
    d.d_payload <- payload;
    tok
  end
  else begin
    let d = { d_src = src; d_dst = dst; d_payload = payload } in
    if t.n_deliveries = Array.length t.deliveries then begin
      let cap = Stdlib.max 8 (2 * t.n_deliveries) in
      let bigger = Array.make cap d in
      Array.blit t.deliveries 0 bigger 0 t.n_deliveries;
      t.deliveries <- bigger
    end;
    t.deliveries.(t.n_deliveries) <- d;
    t.n_deliveries <- t.n_deliveries + 1;
    t.n_deliveries - 1
  end

let send t ~src ~dst payload =
  check_host t src;
  check_host t dst;
  (match t.tap with Some f -> f ~src ~dst payload | None -> ());
  let size = Value.size_bytes payload in
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size;
  let tier =
    if src = dst then begin
      t.tier_host <- t.tier_host + 1;
      Event.Intra_host
    end
    else if t.host_tbl.(src).site = t.host_tbl.(dst).site then begin
      t.tier_site <- t.tier_site + 1;
      Event.Intra_site
    end
    else begin
      t.tier_wan <- t.tier_wan + 1;
      Event.Inter_site
    end
  in
  emit t ~host:src (Event.Send { src; dst; bytes = size; tier });
  if not t.host_tbl.(src).up then drop_msg t ~src ~dst ~at:src Event.Src_down
  else if is_partitioned t t.host_tbl.(src).site t.host_tbl.(dst).site then
    drop_msg t ~src ~dst ~at:src Event.Partitioned
  else if t.drop_rate > 0.0 && Prng.bernoulli t.prng ~p:t.drop_rate then
    drop_msg t ~src ~dst ~at:src Event.Random_loss
  else begin
    let base = latency_between t src dst in
    let delay = base *. (1.0 +. Prng.float t.prng t.latency.jitter) in
    (match t.obs with
    | None -> ()
    | Some r -> Recorder.observe r ~component:"net.delay" delay);
    (* Zero-allocation fast path: the engine carries a bare token into
       [deliver_token]; no closure, no handle, pooled in-flight slot. *)
    Legion_sim.Engine.post_token t.sim ~delay (alloc_delivery t ~src ~dst payload)
  end

let messages_sent t = t.sent
let bytes_sent t = t.bytes
let messages_by_tier t = (t.tier_host, t.tier_site, t.tier_wan)
let messages_dropped t = t.dropped
