module Prng = Legion_util.Prng
module Value = Legion_wire.Value
module Event = Legion_obs.Event
module Recorder = Legion_obs.Recorder

type host_id = int
type site_id = int

(* Registration handle: the tag says which list to search on removal. *)
type watcher = Host_watcher of int | Partition_watcher of int

type latency = {
  intra_host : float;
  intra_site : float;
  inter_site : float;
  jitter : float;
}

let default_latency =
  { intra_host = 5e-6; intra_site = 5e-4; inter_site = 4e-2; jitter = 0.1 }

type host = {
  site : site_id;
  h_name : string;
  mutable up : bool;
  mutable receiver : (src:host_id -> Value.t -> unit) option;
}

(* Per-site host index: a growable int vector, appended in add_host
   order so it stays ascending (host ids only grow). *)
type hostvec = { mutable ids : int array; mutable n : int }

(* In-flight message, pooled: the engine carries only the slot index
   (see Engine.post_token), so a delivery costs no closure and no
   fresh record. [d_raw] is the sealed-and-mutated byte form a payload
   selected for the corruption fault travels as; [None] — the fast
   path — carries the value unserialized. *)
type delivery = {
  mutable d_src : host_id;
  mutable d_dst : host_id;
  mutable d_payload : Value.t;
  mutable d_raw : string option;
}

type drop_causes = {
  by_rate : int;
  by_down_host : int;
  by_partition : int;
  by_no_receiver : int;
  by_corruption : int;
}

(* A transient per-link latency multiplier: messages between [sp_a] and
   [sp_b] (a normalised site pair) are slowed by [sp_factor] until
   virtual time [sp_until]; expired spikes are pruned lazily. *)
type spike = {
  sp_a : site_id;
  sp_b : site_id;
  sp_factor : float;
  sp_until : float;
}

type t = {
  sim : Legion_sim.Engine.t;
  prng : Prng.t;
  latency : latency;
  mutable sites : string array;
  mutable site_hosts : hostvec array;  (* parallel to [sites] *)
  mutable host_tbl : host array;
  mutable n_sites : int;
  mutable n_hosts : int;
  mutable deliveries : delivery array;  (* token-indexed in-flight pool *)
  mutable free_slots : int array;  (* free-slot stack into [deliveries] *)
  mutable free_len : int;
  mutable n_deliveries : int;  (* slots ever handed out *)
  mutable drop_rate : float;
  mutable duplicate_rate : float;
  mutable reorder_rate : float;
  mutable reorder_window : float;
  mutable corrupt_rate : float;
  mutable delay_spikes : spike list;
  mutable partitions : (site_id * site_id) list;
  mutable tap : (src:host_id -> dst:host_id -> Value.t -> unit) option;
  mutable host_watcher : (host_id -> up:bool -> unit) option;
  mutable watcher_seq : int;
  mutable host_watchers : (int * (host_id -> up:bool -> unit)) list;
  mutable partition_watchers :
    (int * (site_id -> site_id -> cut:bool -> unit)) list;
  mutable obs : Recorder.t option;
  mutable sent : int;
  mutable bytes : int;
  mutable dropped : int;
  mutable drop_causes : drop_causes;
  mutable duplicated : int;
  mutable reordered : int;
  mutable corrupted : int;
  mutable tier_host : int;
  mutable tier_site : int;
  mutable tier_wan : int;
}

let new_hostvec () = { ids = [||]; n = 0 }

let hostvec_add v h =
  if v.n = Array.length v.ids then begin
    let cap = Stdlib.max 8 (2 * v.n) in
    let bigger = Array.make cap 0 in
    Array.blit v.ids 0 bigger 0 v.n;
    v.ids <- bigger
  end;
  v.ids.(v.n) <- h;
  v.n <- v.n + 1

let rec deliver_token t tok =
  let d = t.deliveries.(tok) in
  let src = d.d_src and dst = d.d_dst and payload = d.d_payload in
  let raw = d.d_raw in
  d.d_payload <- Value.Unit;
  d.d_raw <- None;
  (* drop the reference *)
  if t.free_len = Array.length t.free_slots then begin
    let bigger = Array.make (Stdlib.max 8 (2 * t.free_len)) 0 in
    Array.blit t.free_slots 0 bigger 0 t.free_len;
    t.free_slots <- bigger
  end;
  t.free_slots.(t.free_len) <- tok;
  t.free_len <- t.free_len + 1;
  let h = t.host_tbl.(dst) in
  if not h.up then drop_msg t ~src ~dst ~at:dst Event.Dst_down
  else
    match h.receiver with
    | None -> drop_msg t ~src ~dst ~at:dst Event.No_receiver
    | Some f -> (
        match raw with
        | None ->
            emit t ~host:dst (Event.Deliver { src; dst });
            f ~src payload
        | Some bytes -> (
            (* End-to-end integrity check on a payload that travelled as
               real (adversary-mutated) bytes: verify fail-closed —
               a checksum mismatch or undecodable body is a counted
               drop, never an exception or a garbled delivery. *)
            match Legion_wire.Envelope.unseal bytes with
            | Ok v ->
                emit t ~host:dst (Event.Deliver { src; dst });
                f ~src v
            | Error _ -> drop_msg t ~src ~dst ~at:dst Event.Corrupted))

and drop_msg t ~src ~dst ~at reason =
  t.dropped <- t.dropped + 1;
  let c = t.drop_causes in
  t.drop_causes <-
    (match reason with
    | Event.Random_loss -> { c with by_rate = c.by_rate + 1 }
    | Event.Src_down | Event.Dst_down ->
        { c with by_down_host = c.by_down_host + 1 }
    | Event.Partitioned -> { c with by_partition = c.by_partition + 1 }
    | Event.No_receiver -> { c with by_no_receiver = c.by_no_receiver + 1 }
    | Event.Corrupted -> { c with by_corruption = c.by_corruption + 1 });
  emit t ~host:at (Event.Drop { src; dst; reason })

and emit t ~host kind =
  match t.obs with
  | None -> ()
  | Some r -> Recorder.emit r ~host ~site:t.host_tbl.(host).site kind

let create ~sim ~prng ?(latency = default_latency) ?obs () =
  let t =
  {
    sim;
    prng;
    latency;
    sites = Array.make 8 "";
    site_hosts = Array.init 8 (fun _ -> new_hostvec ());
    host_tbl = [||];
    n_sites = 0;
    n_hosts = 0;
    deliveries = [||];
    free_slots = [||];
    free_len = 0;
    n_deliveries = 0;
    drop_rate = 0.0;
    duplicate_rate = 0.0;
    reorder_rate = 0.0;
    reorder_window = 0.0;
    corrupt_rate = 0.0;
    delay_spikes = [];
    partitions = [];
    tap = None;
    host_watcher = None;
    watcher_seq = 0;
    host_watchers = [];
    partition_watchers = [];
    obs;
    sent = 0;
    bytes = 0;
    dropped = 0;
    drop_causes =
      {
        by_rate = 0;
        by_down_host = 0;
        by_partition = 0;
        by_no_receiver = 0;
        by_corruption = 0;
      };
    duplicated = 0;
    reordered = 0;
    corrupted = 0;
    tier_host = 0;
    tier_site = 0;
    tier_wan = 0;
  }
  in
  (* Sole consumer of the engine's token dispatch: every Network owns
     its engine (System.boot and all tests build one per net). *)
  Legion_sim.Engine.set_dispatch sim (deliver_token t);
  t

let sim t = t.sim

let add_site t ~name =
  if t.n_sites = Array.length t.sites then begin
    let bigger = Array.make (2 * t.n_sites) "" in
    Array.blit t.sites 0 bigger 0 t.n_sites;
    t.sites <- bigger;
    let more = Array.init (2 * t.n_sites) (fun _ -> new_hostvec ()) in
    Array.blit t.site_hosts 0 more 0 t.n_sites;
    t.site_hosts <- more
  end;
  t.sites.(t.n_sites) <- name;
  t.n_sites <- t.n_sites + 1;
  t.n_sites - 1

let add_host t ~site ~name =
  if site < 0 || site >= t.n_sites then invalid_arg "Network.add_host: bad site";
  let h = { site; h_name = name; up = true; receiver = None } in
  if t.n_hosts = Array.length t.host_tbl then begin
    let cap = Stdlib.max 8 (2 * t.n_hosts) in
    let bigger = Array.make cap h in
    Array.blit t.host_tbl 0 bigger 0 t.n_hosts;
    t.host_tbl <- bigger
  end;
  t.host_tbl.(t.n_hosts) <- h;
  hostvec_add t.site_hosts.(site) t.n_hosts;
  t.n_hosts <- t.n_hosts + 1;
  t.n_hosts - 1

let site_count t = t.n_sites
let host_count t = t.n_hosts
let hosts t = List.init t.n_hosts (fun i -> i)

let check_host t h =
  if h < 0 || h >= t.n_hosts then invalid_arg "Network: bad host id"

let hosts_of_site t s =
  if s < 0 || s >= t.n_sites then []
  else
    let v = t.site_hosts.(s) in
    List.init v.n (fun i -> v.ids.(i))

let site_of t h =
  check_host t h;
  t.host_tbl.(h).site

let host_name t h =
  check_host t h;
  t.host_tbl.(h).h_name

let site_name t s =
  if s < 0 || s >= t.n_sites then invalid_arg "Network: bad site id";
  t.sites.(s)

let set_host_up t h up =
  check_host t h;
  let was = t.host_tbl.(h).up in
  t.host_tbl.(h).up <- up;
  if was <> up then begin
    (match t.host_watcher with None -> () | Some f -> f h ~up);
    List.iter (fun (_, f) -> f h ~up) t.host_watchers
  end

let set_host_watcher t f = t.host_watcher <- f

let next_watcher_id t =
  t.watcher_seq <- t.watcher_seq + 1;
  t.watcher_seq

let add_host_watcher t f =
  let id = next_watcher_id t in
  t.host_watchers <- t.host_watchers @ [ (id, f) ];
  Host_watcher id

let remove_watcher t = function
  | Host_watcher id ->
      t.host_watchers <- List.filter (fun (i, _) -> i <> id) t.host_watchers
  | Partition_watcher id ->
      t.partition_watchers <-
        List.filter (fun (i, _) -> i <> id) t.partition_watchers

let watcher_count t =
  List.length t.host_watchers + List.length t.partition_watchers

let host_is_up t h =
  check_host t h;
  t.host_tbl.(h).up

let norm_pair a b = if a <= b then (a, b) else (b, a)

(* NaN compares false against everything, so the naive [r < 0. || r > 1.]
   check silently accepted it; a probability knob must reject it. *)
let check_rate name r =
  if Float.is_nan r || r < 0.0 || r > 1.0 then invalid_arg name

let set_drop_rate t r =
  check_rate "Network.set_drop_rate" r;
  t.drop_rate <- r

let drop_rate t = t.drop_rate

let set_duplicate_rate t r =
  check_rate "Network.set_duplicate_rate" r;
  t.duplicate_rate <- r

let duplicate_rate t = t.duplicate_rate

let set_corrupt_rate t r =
  check_rate "Network.set_corrupt_rate" r;
  t.corrupt_rate <- r

let corrupt_rate t = t.corrupt_rate

let set_reorder t ~rate ~window =
  check_rate "Network.set_reorder: rate" rate;
  if (not (Float.is_finite window)) || window < 0.0 then
    invalid_arg "Network.set_reorder: window";
  t.reorder_rate <- rate;
  t.reorder_window <- window

let reorder t = (t.reorder_rate, t.reorder_window)

let set_delay_spike t ~a ~b ~factor ~until_ =
  if a < 0 || a >= t.n_sites || b < 0 || b >= t.n_sites then
    invalid_arg "Network.set_delay_spike: bad site id";
  if (not (Float.is_finite factor)) || factor < 1.0 then
    invalid_arg "Network.set_delay_spike: factor";
  if Float.is_nan until_ then invalid_arg "Network.set_delay_spike: until";
  let sp_a, sp_b = norm_pair a b in
  t.delay_spikes <-
    { sp_a; sp_b; sp_factor = factor; sp_until = until_ } :: t.delay_spikes

let clear_delay_spikes t = t.delay_spikes <- []

(* The spike factor for a site pair at [now], pruning expired entries
   while walking; overlapping spikes on one link compound. *)
let spike_factor t ~now a b =
  match t.delay_spikes with
  | [] -> 1.0
  | spikes ->
      let pa, pb = norm_pair a b in
      let live = List.filter (fun sp -> sp.sp_until > now) spikes in
      if List.compare_lengths live spikes <> 0 then t.delay_spikes <- live;
      List.fold_left
        (fun acc sp ->
          if sp.sp_a = pa && sp.sp_b = pb then acc *. sp.sp_factor else acc)
        1.0 live

let set_partitioned t a b cut =
  if a < 0 || a >= t.n_sites || b < 0 || b >= t.n_sites then
    invalid_arg "Network.set_partitioned: bad site id";
  let pair = norm_pair a b in
  let was = List.mem pair t.partitions in
  let without = List.filter (fun p -> p <> pair) t.partitions in
  let now = cut && a <> b in
  t.partitions <- (if now then pair :: without else without);
  if was <> now then
    List.iter
      (fun (_, f) -> f (fst pair) (snd pair) ~cut:now)
      t.partition_watchers

let add_partition_watcher t f =
  let id = next_watcher_id t in
  t.partition_watchers <- t.partition_watchers @ [ (id, f) ];
  Partition_watcher id

let is_partitioned t a b =
  List.mem (norm_pair a b) t.partitions

let set_receiver t h f =
  check_host t h;
  t.host_tbl.(h).receiver <- Some f

let latency_between t a b =
  check_host t a;
  check_host t b;
  if a = b then t.latency.intra_host
  else if t.host_tbl.(a).site = t.host_tbl.(b).site then t.latency.intra_site
  else t.latency.inter_site

let set_tap t tap = t.tap <- tap
let set_obs t obs = t.obs <- obs
let obs t = t.obs

(* Grab a pooled in-flight slot; returns its token. *)
let alloc_delivery ?raw t ~src ~dst payload =
  if t.free_len > 0 then begin
    t.free_len <- t.free_len - 1;
    let tok = t.free_slots.(t.free_len) in
    let d = t.deliveries.(tok) in
    d.d_src <- src;
    d.d_dst <- dst;
    d.d_payload <- payload;
    d.d_raw <- raw;
    tok
  end
  else begin
    let d = { d_src = src; d_dst = dst; d_payload = payload; d_raw = raw } in
    if t.n_deliveries = Array.length t.deliveries then begin
      let cap = Stdlib.max 8 (2 * t.n_deliveries) in
      let bigger = Array.make cap d in
      Array.blit t.deliveries 0 bigger 0 t.n_deliveries;
      t.deliveries <- bigger
    end;
    t.deliveries.(t.n_deliveries) <- d;
    t.n_deliveries <- t.n_deliveries + 1;
    t.n_deliveries - 1
  end

(* One transmission: a delay draw (base latency, jitter, any delay
   spike on the link, any adversarial reorder hold-back) and a posted
   delivery token. Shared by the original send and injected duplicates,
   so each copy races under its own independent latency. *)
let transmit t ~src ~dst ?raw payload =
  let base = latency_between t src dst in
  let base =
    match t.delay_spikes with
    | [] -> base
    | _ ->
        base
        *. spike_factor t
             ~now:(Legion_sim.Engine.now t.sim)
             t.host_tbl.(src).site t.host_tbl.(dst).site
  in
  let delay = base *. (1.0 +. Prng.float t.prng t.latency.jitter) in
  let delay =
    if
      t.reorder_rate > 0.0 && t.reorder_window > 0.0
      && Prng.bernoulli t.prng ~p:t.reorder_rate
    then begin
      (* Hold this datagram back so later sends overtake it: an
         adversarial permutation of deliveries within the window. *)
      let extra = Prng.float t.prng t.reorder_window in
      t.reordered <- t.reordered + 1;
      emit t ~host:src (Event.Reorder { src; dst; extra });
      delay +. extra
    end
    else delay
  in
  (match t.obs with
  | None -> ()
  | Some r -> Recorder.observe r ~component:"net.delay" delay);
  (* Zero-allocation fast path: the engine carries a bare token into
     [deliver_token]; no closure, no handle, pooled in-flight slot. *)
  Legion_sim.Engine.post_token t.sim ~delay (alloc_delivery ?raw t ~src ~dst payload)

(* Seed byte mutation: serialise through the checksummed envelope, then
   flip 1–3 bytes anywhere in the frame (header included). The receiver
   side of [deliver_token] verifies and fail-closed-drops it. *)
let corrupt_bytes t payload ~src ~dst =
  let sealed = Legion_wire.Envelope.seal payload in
  let n = String.length sealed in
  let b = Bytes.of_string sealed in
  let mutations = 1 + Prng.int t.prng 3 in
  for _ = 1 to mutations do
    let pos = Prng.int t.prng n in
    let flip = 1 + Prng.int t.prng 255 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip))
  done;
  t.corrupted <- t.corrupted + 1;
  emit t ~host:src (Event.Corrupt_inject { src; dst; mutations });
  Bytes.to_string b

let send t ~src ~dst payload =
  check_host t src;
  check_host t dst;
  (match t.tap with Some f -> f ~src ~dst payload | None -> ());
  let size = Value.size_bytes payload in
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size;
  let tier =
    if src = dst then begin
      t.tier_host <- t.tier_host + 1;
      Event.Intra_host
    end
    else if t.host_tbl.(src).site = t.host_tbl.(dst).site then begin
      t.tier_site <- t.tier_site + 1;
      Event.Intra_site
    end
    else begin
      t.tier_wan <- t.tier_wan + 1;
      Event.Inter_site
    end
  in
  emit t ~host:src (Event.Send { src; dst; bytes = size; tier });
  if not t.host_tbl.(src).up then drop_msg t ~src ~dst ~at:src Event.Src_down
  else if is_partitioned t t.host_tbl.(src).site t.host_tbl.(dst).site then
    drop_msg t ~src ~dst ~at:src Event.Partitioned
  else if t.drop_rate > 0.0 && Prng.bernoulli t.prng ~p:t.drop_rate then
    drop_msg t ~src ~dst ~at:src Event.Random_loss
  else begin
    let raw =
      if t.corrupt_rate > 0.0 && Prng.bernoulli t.prng ~p:t.corrupt_rate then
        Some (corrupt_bytes t payload ~src ~dst)
      else None
    in
    transmit t ~src ~dst ?raw payload;
    if t.duplicate_rate > 0.0 && Prng.bernoulli t.prng ~p:t.duplicate_rate
    then begin
      (* The adversary re-injects a faithful copy (corruption applies to
         the original transmission only); it draws its own latency, so
         it may arrive before or after — or be reordered against — the
         original. *)
      t.duplicated <- t.duplicated + 1;
      emit t ~host:src (Event.Duplicate { src; dst });
      transmit t ~src ~dst payload
    end
  end

let messages_sent t = t.sent
let bytes_sent t = t.bytes
let messages_by_tier t = (t.tier_host, t.tier_site, t.tier_wan)
let messages_dropped t = t.dropped
let drop_causes t = t.drop_causes
let messages_duplicated t = t.duplicated
let messages_reordered t = t.reordered
let messages_corrupted t = t.corrupted
