(** Simulated wide-area internetwork.

    Legion targets "wide-area assemblies of workstations, supercomputers,
    and parallel supercomputers". The network model has two levels of
    aggregation: {e sites} (an organization — campus, lab) containing
    {e hosts}. Latency is three-tier: same host, same site, different
    sites; an optional multiplicative jitter keeps runs deterministic via
    the supplied PRNG.

    Delivery is best-effort datagrams: a message to a down host, a
    message lost to the configured drop rate, or a message to a host with
    no receiver vanishes silently — reliability is the RPC layer's job,
    exactly as Legion layers itself over "standard protocols" (§3.3). *)

type t

type host_id = int
type site_id = int

type watcher
(** Handle for a watcher registered with {!add_host_watcher} or
    {!add_partition_watcher}; pass it to {!remove_watcher} to
    deregister. *)

type latency = {
  intra_host : float;  (** Local IPC between objects of one host. *)
  intra_site : float;  (** Campus LAN. *)
  inter_site : float;  (** Wide-area. *)
  jitter : float;  (** Multiplicative: delay ∈ [l, l·(1+jitter)]. *)
}

val default_latency : latency
(** 5µs / 0.5ms / 40ms, 10% jitter — a 1996-flavoured internet. *)

val create :
  sim:Legion_sim.Engine.t ->
  prng:Legion_util.Prng.t ->
  ?latency:latency ->
  ?obs:Legion_obs.Recorder.t ->
  unit ->
  t
(** [obs], when given, receives a structured event per message
    ([Send], then exactly one of [Deliver]/[Drop]) plus a ["net.delay"]
    latency sample per scheduled delivery. *)

val sim : t -> Legion_sim.Engine.t

(** {1 Topology} *)

val add_site : t -> name:string -> site_id
val add_host : t -> site:site_id -> name:string -> host_id

val site_count : t -> int
val host_count : t -> int
val hosts : t -> host_id list
val hosts_of_site : t -> site_id -> host_id list
val site_of : t -> host_id -> site_id
val host_name : t -> host_id -> string
val site_name : t -> site_id -> string

(** {1 Failure injection} *)

val set_host_up : t -> host_id -> bool -> unit
val host_is_up : t -> host_id -> bool

val set_host_watcher : t -> (host_id -> up:bool -> unit) option -> unit
(** Observe host up/down {e transitions} (calls that do not change the
    state fire nothing). The runtime installs one to reap fenced zombie
    placements when a crashed host reboots. [None] removes it. *)

val add_host_watcher : t -> (host_id -> up:bool -> unit) -> watcher
(** Append an additional transition watcher without disturbing the one
    installed through {!set_host_watcher} (the runtime's zombie reaper).
    The replica-set repair machinery uses this to notice replica hosts
    going down and coming back. Watchers fire in registration order;
    deregister with {!remove_watcher}. *)

val remove_watcher : t -> watcher -> unit
(** Deregister a watcher added with {!add_host_watcher} or
    {!add_partition_watcher}. Idempotent — removing an already-removed
    handle is a no-op. Machinery with a teardown path ([Repair.stop])
    must remove its watchers, or repeated setup/teardown cycles leak
    closures that keep firing against dead state. *)

val watcher_count : t -> int
(** Currently registered removable watchers (host + partition), for
    leak regression tests. *)

val set_drop_rate : t -> float -> unit
(** Fraction of messages lost uniformly at random; default [0.].
    @raise Invalid_argument on NaN or a value outside [0,1]. *)

val drop_rate : t -> float
(** The currently configured uniform loss fraction. *)

(** {2 Adversarial faults}

    Beyond loss, a real internet duplicates, reorders, delays, and
    corrupts datagrams. Each adversarial fault is PRNG-driven (so runs
    stay deterministic per seed), emits its own event
    ([Duplicate]/[Reorder]/[CorruptInject]), and keeps its own counter.
    All default off, leaving the pre-adversary behaviour untouched. *)

val set_duplicate_rate : t -> float -> unit
(** Probability that a successfully transmitted message is re-injected
    as a second, independent copy with its own latency draw — so the
    copy may overtake the original. The RPC layer's at-least-once
    retransmission means callers must already tolerate duplicates; this
    makes the network itself produce them.
    @raise Invalid_argument on NaN or a value outside [0,1]. *)

val duplicate_rate : t -> float

val set_reorder : t -> rate:float -> window:float -> unit
(** With probability [rate], hold a transmission back by an extra
    uniform draw from [0, window) seconds beyond its modelled latency —
    an adversarial permutation of deliveries within the window. [rate]
    of [0.] or a [window] of [0.] disables it.
    @raise Invalid_argument on a NaN/out-of-range rate or a negative or
    non-finite window. *)

val reorder : t -> float * float
(** The configured (rate, window). *)

val set_corrupt_rate : t -> float -> unit
(** Probability that a transmitted message's payload is serialised
    through the checksummed {!Legion_wire.Envelope} and has 1–3 seeded
    bytes flipped in flight. The receiving side verifies the envelope
    on delivery: any mismatch or decode failure is a counted,
    fail-closed drop ([Drop] with reason [Corrupted]) — never an
    exception, never a garbled delivery.
    @raise Invalid_argument on NaN or a value outside [0,1]. *)

val corrupt_rate : t -> float

val set_delay_spike :
  t -> a:site_id -> b:site_id -> factor:float -> until_:float -> unit
(** Multiply the base latency of messages between sites [a] and [b]
    (either direction; [a = b] slows that site's intra-site and
    intra-host traffic) by [factor] until virtual time [until_].
    Overlapping spikes on one link compound; expired spikes are pruned
    lazily.
    @raise Invalid_argument on a bad site id, a [factor] below 1 or
    non-finite, or a NaN [until_]. *)

val clear_delay_spikes : t -> unit

val set_partitioned : t -> site_id -> site_id -> bool -> unit
(** Sever (or heal) the link between two sites: messages crossing it in
    either direction are silently lost. Intra-site traffic is never
    partitioned. Idempotent. *)

val is_partitioned : t -> site_id -> site_id -> bool

val add_partition_watcher :
  t -> (site_id -> site_id -> cut:bool -> unit) -> watcher
(** Observe partition {e transitions}: the watcher fires with
    [~cut:true] when a link is newly severed and [~cut:false] when it
    heals (idempotent re-cuts and re-heals fire nothing). The
    anti-entropy machinery hooks heals to trigger replica
    reconciliation, exactly as the runtime's host-up watcher hooks
    reboots to reap zombies. Watchers fire in registration order;
    deregister with {!remove_watcher}. *)

(** {1 Messaging} *)

val set_receiver : t -> host_id -> (src:host_id -> Legion_wire.Value.t -> unit) -> unit
(** Install the host's delivery upcall (the runtime does this). *)

val send : t -> src:host_id -> dst:host_id -> Legion_wire.Value.t -> unit
(** Deliver the payload to [dst]'s receiver after the modelled latency.
    Silently lost when either endpoint is down at the relevant instant,
    when dropped, or when [dst] has no receiver. *)

val set_tap : t -> (src:host_id -> dst:host_id -> Legion_wire.Value.t -> unit) option -> unit
(** Observe every send attempt (before loss/partition filtering) —
    protocol debugging and test instrumentation. [None] removes it. *)

val set_obs : t -> Legion_obs.Recorder.t option -> unit
(** Attach or detach the structured-event recorder after creation. *)

val obs : t -> Legion_obs.Recorder.t option

val latency_between : t -> host_id -> host_id -> float
(** Mean one-way latency (jitter excluded). *)

(** {1 Accounting} *)

val messages_sent : t -> int
val bytes_sent : t -> int

val messages_by_tier : t -> int * int * int
(** (intra-host, intra-site, inter-site) message counts. *)

val messages_dropped : t -> int
(** Messages lost for any reason — the sum of the {!drop_causes}. *)

type drop_causes = {
  by_rate : int;  (** Uniform random loss ({!set_drop_rate}). *)
  by_down_host : int;  (** Source or destination host was down. *)
  by_partition : int;  (** The site pair was partitioned. *)
  by_no_receiver : int;  (** The destination had no receiver installed. *)
  by_corruption : int;
      (** Failed the end-to-end integrity check after in-flight byte
          corruption ({!set_corrupt_rate}). *)
}

val drop_causes : t -> drop_causes
(** Per-cause split of {!messages_dropped}. *)

val messages_duplicated : t -> int
(** Extra copies injected by {!set_duplicate_rate}. *)

val messages_reordered : t -> int
(** Transmissions held back by {!set_reorder}. *)

val messages_corrupted : t -> int
(** Payloads byte-mutated in flight by {!set_corrupt_rate} (counted at
    injection; the resulting receive-side drops are [by_corruption]). *)
