module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Prng = Legion_util.Prng
module Engine = Legion_sim.Engine
module Network = Legion_net.Network
module Runtime = Legion_rt.Runtime
module Impl = Legion_core.Impl
module C = Legion_core.Convert
module Event = Legion_obs.Event

module Env = Legion_sec.Env
module Err = Legion_rt.Err

let unit_random = "legion.sched.random"
let unit_round_robin = "legion.sched.round_robin"
let unit_least_loaded = "legion.sched.least_loaded"
let unit_live_load = "legion.sched.live_load"
let unit_rebalance = "legion.sched.rebalance"

let decode_candidates v =
  let ( let* ) r f = Result.bind r f in
  match v with
  | Value.List cs ->
      let rec loop acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest ->
            let* host = C.loid_field c "host" in
            let* load = C.int_field c "load" in
            loop ((host, load) :: acc) rest
      in
      loop [] cs
  | _ -> Error "PickHost: candidates must be a list"

(* All three agents share the shell: decode candidates, refuse empty
   lists, delegate the choice. *)
let picker unit_name choose (_ctx : Runtime.ctx) : Impl.part =
  let pick_host _ctx args _env k =
    match args with
    | [ cands_v ] -> (
        match decode_candidates cands_v with
        | Error msg -> Impl.bad_args k msg
        | Ok [] -> Impl.bad_args k "PickHost: no candidates"
        | Ok candidates -> k (Ok (Loid.to_value (choose candidates))))
    | _ -> Impl.bad_args k "PickHost expects one candidate list"
  in
  Impl.part ~methods:[ ("PickHost", pick_host) ] unit_name

let factory_random (ctx : Runtime.ctx) : Impl.part =
  let prng = Prng.split (Runtime.prng ctx.Runtime.rt) in
  picker unit_random
    (fun candidates -> fst (Prng.choose prng (Array.of_list candidates)))
    ctx

(* One cursor per candidate-list size: a single shared cursor taken
   [mod n] skews the rotation whenever successive calls carry lists of
   different sizes (e.g. [mod 2] and [mod 3] of one monotone counter
   correlate), and [List.nth] made each pick O(n) besides. Per-size
   cursors rotate each size class exactly. *)
let factory_round_robin (ctx : Runtime.ctx) : Impl.part =
  let cursors = Hashtbl.create 4 in
  picker unit_round_robin
    (fun candidates ->
      let arr = Array.of_list candidates in
      let n = Array.length arr in
      let c = Option.value ~default:0 (Hashtbl.find_opt cursors n) in
      Hashtbl.replace cursors n ((c + 1) mod n);
      fst arr.(c))
    ctx

let factory_least_loaded (ctx : Runtime.ctx) : Impl.part =
  picker unit_least_loaded
    (fun candidates ->
      let best =
        List.fold_left
          (fun acc (h, l) ->
            match acc with Some (_, bl) when bl <= l -> acc | _ -> Some (h, l))
          None candidates
      in
      match best with Some (h, _) -> h | None -> assert false)
    ctx

(* The live-load agent distrusts the Magistrate's local activation
   counts (they drift: deactivations, sweeps, and crashes are invisible
   to them) and instead polls every candidate Host Object's GetState
   before choosing — accuracy bought with one RPC fan-out per placement.
   E11 quantifies the trade against the local policies. *)
let factory_live_load (ctx : Runtime.ctx) : Impl.part =
  let self = Runtime.proc_loid ctx.Runtime.self in
  let pick_host _ctx args env k =
    match args with
    | [ cands_v ] -> (
        match decode_candidates cands_v with
        | Error msg -> Impl.bad_args k msg
        | Ok [] -> Impl.bad_args k "PickHost: no candidates"
        | Ok candidates ->
            let denv = Env.delegate env ~calling:self in
            let n = List.length candidates in
            let answers = ref [] in
            let pending = ref n in
            (* A probe that times out, is refused, or answers something
               undecodable is an observable event, not a silent shrug —
               and the host it covered still competes using the
               magistrate-supplied count, so a partially-answered
               fan-out compares every candidate instead of only the
               responsive subset. *)
            let probe_failed h =
              Runtime.emit ctx.Runtime.rt
                ~host:(Runtime.proc_host ctx.Runtime.self)
                (Event.Probe_fail { agent = self; host_obj = h })
            in
            let finish () =
              let merged =
                List.map
                  (fun (h, stale) ->
                    match
                      List.find_opt (fun (h', _) -> Loid.equal h h') !answers
                    with
                    | Some (_, live) -> (h, live)
                    | None -> (h, stale))
                  candidates
              in
              let best =
                List.fold_left
                  (fun acc (h, l) ->
                    match acc with
                    | Some (_, bl) when bl <= l -> acc
                    | _ -> Some (h, l))
                  None merged
              in
              match best with
              | Some (h, _) -> k (Ok (Loid.to_value h))
              | None -> k (Error (Err.Refused "no candidates"))
            in
            let probe_timeout =
              (Runtime.config ctx.Runtime.rt).Runtime.call_timeout /. 10.0
            in
            List.iter
              (fun (h, _) ->
                Runtime.invoke ctx ~timeout:probe_timeout ~dst:h ~meth:"GetState"
                  ~args:[] ~env:denv (fun r ->
                    (match r with
                    | Ok st -> (
                        match Legion_core.Convert.int_field st "load" with
                        | Ok load -> answers := (h, load) :: !answers
                        | Error _ -> probe_failed h)
                    | Error _ -> probe_failed h);
                    decr pending;
                    if !pending = 0 then finish ()))
              candidates)
    | _ -> Impl.bad_args k "PickHost expects one candidate list"
  in
  Impl.part ~methods:[ ("PickHost", pick_host) ] unit_live_load

(* --- The rebalancer: §3.8's "complex scheduling policies" made
   autonomic. Configured with the Jurisdictions it supervises (plus
   parked spare Magistrates), it wakes every period and
   - migrates hot objects toward their callers: an object whose
     per-period demand clears [hot_calls] and whose dominant caller
     site differs from where it runs is [Move]d to that site's
     Magistrate (next call reactivates it there);
   - splits oversized Jurisdictions: a Magistrate managing more than
     [split_objects] objects hands half to a spare sharing its site's
     storage ([TransferObjects]), announced with a [Split] event.
   The demand signal is the runtime's per-placement caller-site
   accounting, diffed between wakeups, so only fresh traffic counts —
   a flash crowd shifts the dominant site within one period. *)
let factory_rebalance (ctx : Runtime.ctx) : Impl.part =
  let self = Runtime.proc_loid ctx.Runtime.self in
  let magistrates = ref [] (* (mag, site) *) in
  let spares = ref [] (* (mag, site) *) in
  let hot_calls = ref 20 in
  let split_objects = ref 64 in
  (* obj -> (requests, caller-site histogram) at the previous wakeup *)
  let seen = Loid.Table.create () in
  let decode_mag_list v name =
    let ( let* ) r f = Result.bind r f in
    match C.field v name with
    | Error _ -> Ok []
    | Ok (Value.List ms) ->
        let rec loop acc = function
          | [] -> Ok (List.rev acc)
          | m :: rest ->
              let* mag = C.loid_field m "mag" in
              let* site = C.int_field m "site" in
              loop ((mag, site) :: acc) rest
        in
        loop [] ms
    | Ok _ -> Error (name ^ " must be a list")
  in
  let configure _ctx args _env k =
    match args with
    | [ cfg ] -> (
        let ( let* ) r f = Result.bind r f in
        let decoded =
          let* mags = decode_mag_list cfg "magistrates" in
          let* sps = decode_mag_list cfg "spares" in
          let hot =
            match C.int_field cfg "hot_calls" with Ok n -> n | Error _ -> 20
          in
          let split =
            match C.int_field cfg "split_objects" with
            | Ok n -> n
            | Error _ -> 64
          in
          Ok (mags, sps, hot, split)
        in
        match decoded with
        | Error msg -> Impl.bad_args k msg
        | Ok (mags, sps, hot, split) ->
            magistrates := mags;
            spares := sps;
            hot_calls := hot;
            split_objects := split;
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "Configure expects one record"
  in
  let dominant_site histogram =
    List.fold_left
      (fun acc (site, n) ->
        match acc with
        | Some (_, best) when best >= n -> acc
        | _ -> if n > 0 then Some (site, n) else acc)
      None histogram
  in
  let consider_object ctx ~env ~mag obj =
    let rt = ctx.Runtime.rt in
    match Runtime.find_proc rt obj with
    | None -> () (* inert: no demand worth chasing *)
    (* Only application objects are migration fodder (3.8: Scheduling
       Agents place application objects). Infrastructure shows up in
       ListObjects too — classes, Magistrates, agents — and moving a
       hot class would sever its cloning loop; classes shed load by
       cloning, not by moving. *)
    | Some proc
      when not
             (String.equal
                (Runtime.proc_kind proc)
                Legion_core.Well_known.kind_app) ->
        ()
    | Some proc ->
        let total = Runtime.requests_of proc in
        let sites = Runtime.caller_sites proc in
        let prev_total, prev_sites =
          Option.value ~default:(0, []) (Loid.Table.find seen obj)
        in
        Loid.Table.set seen obj (total, sites);
        let delta = total - prev_total in
        if delta >= !hot_calls then
          let fresh =
            List.map
              (fun (s, n) ->
                (s, n - Option.value ~default:0 (List.assoc_opt s prev_sites)))
              sites
          in
          match dominant_site fresh with
          | Some (want, _)
            when want <> Network.site_of (Runtime.net rt) (Runtime.proc_host proc)
            -> (
              match
                List.find_opt
                  (fun (m, s) -> s = want && not (Loid.equal m mag))
                  !magistrates
              with
              | Some (dst, _) ->
                  (* The counter dies with the placement; start the
                     next delta from the new incarnation's zero. *)
                  Loid.Table.remove seen obj;
                  Runtime.invoke ctx ~dst:mag ~meth:"Move"
                    ~args:[ Loid.to_value obj; Loid.to_value dst ]
                    ~env
                    (fun _ -> ())
              | None -> ())
          | _ -> ()
  in
  let consider_split ctx ~env ~mag ~mag_site ~objects =
    if objects > !split_objects then
      match List.find_opt (fun (_, s) -> s = mag_site) !spares with
      | None -> ()
      | Some ((spare, _) as entry) ->
          (* Claim the spare now so overlapping wakeups cannot hand the
             same Magistrate out twice; return it on failure. *)
          spares := List.filter (fun e -> e != entry) !spares;
          Runtime.invoke ctx ~dst:mag ~meth:"TransferObjects"
            ~args:[ Loid.to_value spare; Value.Int (objects / 2) ]
            ~env
            (fun r ->
              match r with
              | Ok (Value.Int moved) ->
                  magistrates := !magistrates @ [ (spare, mag_site) ];
                  Runtime.emit ctx.Runtime.rt
                    ~host:(Runtime.proc_host ctx.Runtime.self)
                    (Event.Split { magistrate = mag; dst = spare; objects = moved })
              | Ok _ | Error _ -> spares := entry :: !spares)
  in
  let round ctx ~env =
    List.iter
      (fun (mag, mag_site) ->
        Runtime.invoke ctx ~dst:mag ~meth:"ListObjects" ~args:[] ~env (fun r ->
            match r with
            | Ok (Value.List objs) ->
                let objs =
                  List.filter_map
                    (fun v -> Result.to_option (C.loid_arg v))
                    objs
                in
                List.iter (consider_object ctx ~env ~mag) objs;
                consider_split ctx ~env ~mag ~mag_site
                  ~objects:(List.length objs)
            | Ok _ | Error _ -> ()))
      !magistrates
  in
  let start_rebalance ctx args env k =
    match args with
    | [ Value.Float period; Value.Float until ] ->
        if period <= 0.0 then Impl.bad_args k "StartRebalance: period <= 0"
        else begin
          let eng = Runtime.sim ctx.Runtime.rt in
          let env = Env.delegate env ~calling:self in
          let rec tick time =
            if time <= until then
              ignore
                (Engine.schedule_at eng ~time (fun () ->
                     if Runtime.is_live ctx.Runtime.self then begin
                       round ctx ~env;
                       tick (time +. period)
                     end))
          in
          tick (Engine.now eng +. period);
          k Impl.ok_unit
        end
    | _ -> Impl.bad_args k "StartRebalance expects (period, until)"
  in
  Impl.part
    ~methods:
      [ ("Configure", configure); ("StartRebalance", start_rebalance) ]
    unit_rebalance

let register () =
  Impl.register unit_random factory_random;
  Impl.register unit_round_robin factory_round_robin;
  Impl.register unit_least_loaded factory_least_loaded;
  Impl.register unit_live_load factory_live_load;
  Impl.register unit_rebalance factory_rebalance
