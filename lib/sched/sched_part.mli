(** Scheduling Agents.

    "Scheduling is intentionally left out of the core object model,
    except for a few hooks" (§3.7): the class logical table carries a
    Scheduling Agent LOID per object, and Magistrates consult that agent
    when placing an activation. "Complex scheduling policies are
    intended to be implemented outside of the Magistrate in Scheduling
    Agents" (§3.8).

    A Scheduling Agent answers one method:
    [PickHost(candidates: list<record{host: loid, load: int}>): loid].

    Four policies ship as distinct implementation units, so sites can
    pick per class or per object:
    - ["legion.sched.random"] — uniform choice;
    - ["legion.sched.round_robin"] — cycles through candidates;
    - ["legion.sched.least_loaded"] — minimum reported load, ties
      broken by list order;
    - ["legion.sched.live_load"] — polls each candidate Host Object's
      [GetState] (short-timeout probes) and places on the host with the
      fewest live processes. Probe failures and undecodable replies are
      announced with [ProbeFail] events, and unanswered candidates keep
      competing with their Magistrate-supplied (stale) counts, so the
      choice always compares the full candidate list. Accurate under
      churn, at one RPC fan-out per placement.

    A fifth unit, ["legion.sched.rebalance"], is not a picker but an
    autonomic rebalancer (§3.8 "complex scheduling policies … in
    Scheduling Agents"): [Configure] it with the Jurisdictions to
    supervise — [{magistrates: list{mag, site}, spares: list{mag,
    site}, hot_calls: int, split_objects: int}] — then
    [StartRebalance(period, until)] wakes it every [period] virtual
    seconds to (a) [Move] application objects whose fresh per-period
    demand clears [hot_calls] toward their dominant caller site
    (infrastructure — classes, Magistrates, agents — is never moved;
    classes shed load by cloning instead), and (b) split any
    Jurisdiction holding more than [split_objects] objects by
    transferring half to a spare Magistrate on the same site (emitting
    a [Split] event). Spare Magistrates must share the site's storage
    (the §2.2 non-disjoint case). *)

module Impl := Legion_core.Impl

val unit_random : string
val unit_round_robin : string
val unit_least_loaded : string
val unit_live_load : string
val unit_rebalance : string

val factory_random : Impl.factory
val factory_round_robin : Impl.factory
val factory_least_loaded : Impl.factory
val factory_live_load : Impl.factory
val factory_rebalance : Impl.factory

val register : unit -> unit
(** Install all five units. *)
