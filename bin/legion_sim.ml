(* legion-sim: a command-line driver for the simulated Legion.

   Subcommands:
     boot     bring a system up, print its inventory, run idle
     drive    run a synthetic workload and report per-component load
     trace    run one binding resolution with full message accounting
     faults   run an open-loop workload under a scripted fault schedule
     chaos    run seeded adversarial schedules (E22) against the
              composed ledger/txn/group workload, audit exactly-once
              and atomicity invariants, shrink any failure to a
              replayable artifact; exits non-zero on a violation
     overload drive a serial bottleneck past saturation and report
              shedding and circuit-breaker activity
     replicate run a self-healing replica set through a kill sweep and
              a fenced network split, and report repair and
              anti-entropy activity
     scale    run the E18 planetary-sweep kernels at a chosen scale,
              optionally emitting the deterministic JSON report
     elastic  run the E19 flash-crowd scenario (baseline or with the
              autonomic elasticity armed) and report the adaptation
     txn      drive atomic multi-object invocations (2PC or sagas),
              optionally crashing the coordinator mid-run, and audit
              atomicity from the event-sourced version history
     tenants  run the E21 noisy-neighbor scenario (quiet and noisy
              arms) and gate on tenant isolation, shed attribution and
              denied bindings; exits non-zero on a gate violation
     idl      parse an IDL file and echo the normalized interfaces *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Counter = Legion_util.Counter
module Prng = Legion_util.Prng
module Network = Legion_net.Network
module Impl = Legion_core.Impl
module Opr = Legion_core.Opr
module Well_known = Legion_core.Well_known
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Event = Legion_obs.Event
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module Script = Legion_sim.Script
module System = Legion.System
module Api = Legion.Api
open Cmdliner

(* --- shared fixture bits --- *)

let counter_unit = "cli.counter"

let counter_factory (_ctx : Runtime.ctx) : Impl.part =
  let n = ref 0 in
  Impl.part
    ~methods:
      [
        ( "Increment",
          fun _ args _ k ->
            match args with
            | [ Value.Int d ] ->
                n := !n + d;
                k (Ok (Value.Int !n))
            | _ -> Impl.bad_args k "Increment expects one int" );
        ("Get", fun _ _ _ k -> k (Ok (Value.Int !n)));
      ]
    ~save:(fun () -> Value.Int !n)
    ~restore:(fun v ->
      match v with
      | Value.Int i ->
          n := i;
          Ok ()
      | _ -> Error "bad counter state")
    counter_unit

let parse_sites spec =
  try
    let parts = String.split_on_char ',' spec in
    List.map
      (fun p ->
        match String.split_on_char ':' p with
        | [ name; n ] -> (name, int_of_string n)
        | [ name ] -> (name, 2)
        | _ -> failwith "bad site spec")
      parts
  with _ -> failwith "site spec must look like  uva:4,doe:8"

let boot_system ~sites ~seed =
  Impl.register counter_unit counter_factory;
  System.boot ~seed:(Int64.of_int seed) ~sites:(parse_sites sites) ()

let sites_arg =
  let doc = "Topology: comma-separated site:hosts pairs, e.g. uva:4,doe:8." in
  Arg.(value & opt string "east:3,west:3" & info [ "sites" ] ~docv:"SPEC" ~doc)

let seed_arg =
  let doc = "PRNG seed; runs are deterministic per seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

(* --- boot --- *)

let cmd_boot =
  let run sites seed =
    let sys = boot_system ~sites ~seed in
    Format.printf "Legion is up.@.@.";
    Format.printf "%-12s %-8s %-40s@." "site" "hosts" "magistrate / binding agent";
    List.iter
      (fun s ->
        Format.printf "%-12s %-8d %s / %s@." s.System.site_name
          (List.length s.System.net_hosts)
          (Loid.to_string s.System.magistrate)
          (Loid.to_string s.System.agent))
      (System.sites sys);
    Format.printf "@.core classes:@.";
    List.iter
      (fun c -> Format.printf "  %s@." (Loid.to_string c))
      Well_known.core_classes;
    Format.printf "@.%d messages exchanged during bootstrap@."
      (Network.messages_sent (System.net sys))
  in
  let info = Cmd.info "boot" ~doc:"Boot a system and print its inventory." in
  Cmd.v info Term.(const run $ sites_arg $ seed_arg)

(* --- drive --- *)

let cmd_drive =
  let objects_arg =
    Arg.(value & opt int 32 & info [ "objects" ] ~docv:"N" ~doc:"Objects to create.")
  in
  let calls_arg =
    Arg.(value & opt int 1000 & info [ "calls" ] ~docv:"N" ~doc:"Invocations to issue.")
  in
  let tree_arg =
    Arg.(value & opt int 0 & info [ "tree" ] ~docv:"K"
           ~doc:"Arrange site Binding Agents under a combining tree of this fan-out (0 = flat).")
  in
  let run sites seed objects calls tree =
    let sys = boot_system ~sites ~seed in
    if tree > 0 then System.arrange_agent_tree sys ~fanout:tree;
    let ctx = System.client sys () in
    let cls =
      Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Counter"
        ~units:[ counter_unit ] ()
    in
    let objs =
      Array.init objects (fun _ -> Api.create_object_exn sys ctx ~cls ())
    in
    let prng = Prng.create ~seed:(Int64.of_int (seed + 1)) in
    let failures = ref 0 in
    let t0 = System.now sys in
    for _ = 1 to calls do
      let target = objs.(Prng.int prng objects) in
      match Api.call sys ctx ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ] with
      | Ok _ -> ()
      | Error _ -> incr failures
    done;
    Format.printf "%d calls over %d objects in %.3f virtual s (%d failures)@.@."
      calls objects
      (System.now sys -. t0)
      !failures;
    let groups =
      [
        Well_known.kind_binding_agent;
        Well_known.kind_class;
        Well_known.kind_magistrate;
        Well_known.kind_host;
        Well_known.kind_app;
      ]
    in
    Format.printf "%-15s %-10s %-10s@." "component" "total rq" "max rq";
    let reg = System.registry sys in
    List.iter
      (fun g ->
        let mx = match Counter.Registry.group_max reg g with
          | Some (_, v) -> v
          | None -> 0
        in
        Format.printf "%-15s %-10d %-10d@." g (Counter.Registry.group_total reg g) mx)
      groups;
    let ih, is_, ws = Network.messages_by_tier (System.net sys) in
    Format.printf "@.messages: %d intra-host, %d intra-site, %d wide-area (%d dropped)@."
      ih is_ ws
      (Network.messages_dropped (System.net sys))
  in
  let info = Cmd.info "drive" ~doc:"Run a synthetic workload and report load." in
  Cmd.v info Term.(const run $ sites_arg $ seed_arg $ objects_arg $ calls_arg $ tree_arg)

(* --- trace --- *)

let cmd_trace =
  let verbose_arg =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every trace event.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the structured event trace as JSON on stdout.")
  in
  let run sites seed verbose json =
    let sys = boot_system ~sites ~seed in
    let obs = System.obs sys in
    let ctx = System.client sys () in
    let cls =
      Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Counter"
        ~units:[ counter_unit ] ()
    in
    let loid = Api.create_object_exn sys ctx ~cls () in
    if not json then Format.printf "created %s (inert)@." (Loid.to_string loid);
    (* Each stage runs against a cleared recorder, so its event list is
       exactly the §4.1 sequence the stage exercises. *)
    let stage label f =
      Recorder.clear obs;
      let m0 = Network.messages_sent (System.net sys) in
      let t0 = System.now sys in
      let err = match f () with Ok _ -> None | Error e -> Some (Err.to_string e) in
      ( label,
        Network.messages_sent (System.net sys) - m0,
        (System.now sys -. t0) *. 1000.0,
        err,
        Recorder.events obs )
    in
    let deactivate () =
      (* The managing Magistrate is whichever accepted the placement;
         asking all of them deactivates the object exactly once. *)
      List.iter
        (fun m ->
          ignore
            (Api.call sys ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value loid ]))
        (System.magistrates sys);
      Ok Value.Unit
    in
    let get () = Api.call sys ctx ~dst:loid ~meth:"Get" ~args:[] in
    (* Evaluation order matters (each stage advances the simulation), so
       bind them in sequence rather than inside the list literal. *)
    let s1 = stage "first reference (cold)" get in
    let s2 = stage "second reference (cached)" get in
    let s3 = stage "deactivate (goes inert)" deactivate in
    let s4 = stage "reference after deactivation (stale binding)" get in
    let stages = [ s1; s2; s3; s4 ] in
    if json then begin
      let stage_json (label, msgs, ms, err, events) =
        Printf.sprintf "{%S:%S,%S:%d,%S:%.6f%s,%S:[%s]}" "label" label
          "messages" msgs "virtual_ms" ms
          (match err with
          | None -> ""
          | Some e -> Printf.sprintf ",%S:%S" "error" e)
          "events"
          (String.concat "," (List.map Event.to_json events))
      in
      print_string
        (Printf.sprintf "{%S:[%s]}\n" "stages"
           (String.concat "," (List.map stage_json stages)))
    end
    else
      List.iter
        (fun (label, msgs, ms, err, events) ->
          Format.printf "%-44s %2d messages, %.3f virtual ms%s@." label msgs ms
            (match err with None -> "" | Some e -> Printf.sprintf "  (%s)" e);
          if verbose then
            List.iter (fun e -> Format.printf "  %a@." Event.pp e) events)
        stages
  in
  let info =
    Cmd.info "trace"
      ~doc:
        "Trace the Fig. 17 binding sequences (cold, warm, stale) as \
         structured events."
  in
  Cmd.v info Term.(const run $ sites_arg $ seed_arg $ verbose_arg $ json_arg)

(* --- soak --- *)

let cmd_soak =
  let rounds_arg =
    Arg.(value & opt int 300 & info [ "rounds" ] ~docv:"N" ~doc:"Workload rounds.")
  in
  let chaos_arg =
    Arg.(value & opt float 0.03 & info [ "chaos" ] ~docv:"P"
           ~doc:"Per-round probability of a host crash (with reboot).")
  in
  let run sites seed rounds chaos =
    let sys = boot_system ~sites ~seed in
    let ctx = System.client sys () in
    let cls =
      Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Counter"
        ~units:[ counter_unit ] ()
    in
    let n_objects = 16 in
    let objs = Array.init n_objects (fun _ -> Api.create_object_exn sys ctx ~cls ()) in
    let prng = Prng.create ~seed:(Int64.of_int (seed + 99)) in
    let infra =
      List.map (fun s -> List.hd s.System.net_hosts) (System.sites sys)
    in
    let ok = ref 0 and failed = ref 0 and crashes = ref 0 in
    for _ = 1 to rounds do
      let target = objs.(Prng.int prng n_objects) in
      (match Api.call sys ctx ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ] with
      | Ok _ -> incr ok
      | Error _ -> incr failed);
      if Prng.bernoulli prng ~p:chaos then begin
        let candidates =
          List.filter
            (fun h ->
              (not (List.mem h infra)) && Network.host_is_up (System.net sys) h)
            (Network.hosts (System.net sys))
        in
        if candidates <> [] then begin
          (* Checkpoint everything, then crash; the host reboots later. *)
          List.iter
            (fun m ->
              ignore
                (Api.call sys ctx ~dst:m ~meth:"SweepIdle" ~args:[ Value.Float 0.0 ]))
            (System.magistrates sys);
          let victim = List.nth candidates (Prng.int prng (List.length candidates)) in
          Runtime.crash_host (System.rt sys) victim;
          incr crashes;
          let net = System.net sys in
          ignore
            (Legion_sim.Engine.schedule (System.sim sys) ~delay:5.0 (fun () ->
                 Network.set_host_up net victim true))
        end
      end;
      System.run_for sys 0.2
    done;
    System.run sys;
    let reachable =
      Array.fold_left
        (fun acc o ->
          match Api.call sys ctx ~dst:o ~meth:"Get" ~args:[] with
          | Ok _ -> acc + 1
          | Error _ -> acc)
        0 objs
    in
    Format.printf
      "%d rounds: %d ok, %d failed during chaos; %d crashes injected@." rounds !ok
      !failed !crashes;
    Format.printf "after healing: %d/%d objects reachable; %.1f virtual s elapsed@."
      reachable n_objects (System.now sys);
    if reachable < n_objects then exit 1
  in
  let info =
    Cmd.info "soak" ~doc:"Run a chaos workload and verify every object survives."
  in
  Cmd.v info Term.(const run $ sites_arg $ seed_arg $ rounds_arg $ chaos_arg)

(* --- faults --- *)

let cmd_faults =
  let ramp_arg =
    Arg.(value & opt string "0,0.01,0.05,0.2,0"
         & info [ "ramp" ] ~docv:"P0,P1,..."
             ~doc:"Drop-rate ramp: the values are stepped through evenly over the run.")
  in
  let duration_arg =
    Arg.(value & opt float 20.0
         & info [ "duration" ] ~docv:"S" ~doc:"Virtual seconds of workload.")
  in
  let period_arg =
    Arg.(value & opt float 0.05
         & info [ "period" ] ~docv:"S" ~doc:"Seconds between calls (open loop).")
  in
  let partition_arg =
    Arg.(value & opt (some string) None
         & info [ "partition" ] ~docv:"T:W"
             ~doc:"Partition the first two sites from T for W seconds.")
  in
  let crash_arg =
    Arg.(value & opt (some float) None
         & info [ "crash" ] ~docv:"T"
             ~doc:"Crash a non-infrastructure host at T; it reboots 5 s later.")
  in
  let duplicate_arg =
    Arg.(value & opt float 0.0
         & info [ "duplicate" ] ~docv:"P"
             ~doc:"Probability that a delivered message is delivered twice.")
  in
  let corrupt_arg =
    Arg.(value & opt float 0.0
         & info [ "corrupt" ] ~docv:"P"
             ~doc:"Probability that a payload is byte-mutated in flight \
                   (dropped at the receiver by the integrity check).")
  in
  let reorder_arg =
    Arg.(value & opt (some string) None
         & info [ "reorder" ] ~docv:"P:W"
             ~doc:"Hold back messages with probability P for up to W extra \
                   seconds, letting later traffic overtake them.")
  in
  let parse_window spec =
    match String.split_on_char ':' spec with
    | [ t; w ] -> (float_of_string t, float_of_string w)
    | _ -> failwith "window spec must look like  8.0:2.0"
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the report as one JSON object (goodput windows, retry \
               counters, per-cause drop split, MTTR percentiles).")
  in
  let run sites seed ramp duration period partition crash duplicate corrupt
      reorder json =
    let sys = boot_system ~sites ~seed in
    let ctx = System.client sys () in
    let cls =
      Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Counter"
        ~units:[ counter_unit ] ()
    in
    let n_objects = 16 in
    let objs =
      Array.init n_objects (fun _ -> Api.create_object_exn sys ctx ~cls ~eager:true ())
    in
    Array.iter (fun o -> ignore (Api.call sys ctx ~dst:o ~meth:"Get" ~args:[])) objs;
    let sim = System.sim sys and net = System.net sys and obs = System.obs sys in
    let mark = Recorder.total obs in
    let values =
      List.map float_of_string (String.split_on_char ',' ramp)
    in
    let steps = max 1 (List.length values - 1) in
    let t0 = System.now sys in
    let t_end = t0 +. duration in
    Script.ramp sim ~start:t0 ~until:t_end ~steps ~values
      (Network.set_drop_rate net);
    if duplicate > 0.0 then Network.set_duplicate_rate net duplicate;
    if corrupt > 0.0 then Network.set_corrupt_rate net corrupt;
    (match reorder with
    | None -> ()
    | Some spec ->
        let rate, window = parse_window spec in
        Network.set_reorder net ~rate ~window);
    (match partition with
    | None -> ()
    | Some spec ->
        let t, w = parse_window spec in
        let sites = System.sites sys in
        if List.length sites < 2 then failwith "--partition needs two sites";
        let a = (List.nth sites 0).System.site_id
        and b = (List.nth sites 1).System.site_id in
        Script.pulse sim ~start:(t0 +. t) ~width:w
          ~on:(fun () -> Network.set_partitioned net a b true)
          ~off:(fun () -> Network.set_partitioned net a b false));
    (match crash with
    | None -> ()
    | Some t ->
        let infra = List.map (fun s -> List.hd s.System.net_hosts) (System.sites sys) in
        let victim =
          match List.filter (fun h -> not (List.mem h infra)) (Network.hosts net) with
          | h :: _ -> h
          | [] -> failwith "--crash needs a non-infrastructure host"
        in
        Script.at sim ~time:(t0 +. t) (fun () ->
            Runtime.crash_host (System.rt sys) victim);
        Script.at sim ~time:(t0 +. t +. 5.0) (fun () ->
            Network.set_host_up net victim true));
    (* The open-loop workload: outcomes are bucketed by issue time so
       goodput can be read per ramp step. *)
    let step_width = duration /. float_of_int steps in
    let issued = Array.make steps 0 and ok = Array.make steps 0 in
    let giveup_errors = ref 0 in
    let prng = Prng.create ~seed:(Int64.of_int (seed + 7)) in
    Script.every sim ~period ~until:(t_end -. 1e-9) (fun () ->
        let step =
          min (steps - 1)
            (int_of_float ((System.now sys -. t0) /. step_width))
        in
        issued.(step) <- issued.(step) + 1;
        let target = objs.(Prng.int prng n_objects) in
        Runtime.invoke ctx ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ]
          (function
            | Ok _ -> ok.(step) <- ok.(step) + 1
            | Error _ -> incr giveup_errors));
    System.run sys;
    let events = Recorder.events_since obs mark in
    let retries = Trace.count_of (Trace.retry ()) events in
    let giveups = Trace.count_of (Trace.giveup ()) events in
    let cancels = Trace.count_of (Trace.cancel ()) events in
    let hist_json name h =
      match h with
      | None -> Printf.sprintf "\"%s\":{\"samples\":0}" name
      | Some h ->
          let module H = Legion_util.Stats.Histogram in
          Printf.sprintf
            "\"%s\":{\"samples\":%d,\"p50_ms\":%.1f,\"p90_ms\":%.1f,\"p99_ms\":%.1f}"
            name (H.total h)
            (1000.0 *. H.percentile h 50.0)
            (1000.0 *. H.percentile h 90.0)
            (1000.0 *. H.percentile h 99.0)
    in
    if json then begin
      let window_json i v =
        Printf.sprintf
          "{\"from\":%.2f,\"to\":%.2f,\"drop\":%.3f,\"issued\":%d,\"ok\":%d}"
          (float_of_int i *. step_width)
          (float_of_int (i + 1) *. step_width)
          v issued.(i) ok.(i)
      in
      let windows =
        List.filteri (fun i _ -> i < steps) values
        |> List.mapi window_json |> String.concat ","
      in
      let ih, is_, ws = Network.messages_by_tier net in
      let causes = Network.drop_causes net in
      Format.printf
        "{\"windows\":[%s],\"retries\":%d,\"giveups\":%d,\"cancels\":%d,\
         \"failed\":%d,\"sheds\":%d,%s,%s,\"messages\":{\"intra_host\":%d,\
         \"intra_site\":%d,\"wide_area\":%d,\"messages_dropped\":%d,\
         \"duplicated\":%d,\"reordered\":%d,\"corrupted\":%d},\
         \"drops\":{\"by_rate\":%d,\"by_down_host\":%d,\"by_partition\":%d,\
         \"by_no_receiver\":%d,\"by_corruption\":%d}}@."
        windows retries giveups cancels !giveup_errors
        (Runtime.total_sheds (System.rt sys))
        (hist_json "recovery" (Recorder.latency obs ~component:"rt.recovery"))
        (hist_json "mttr" (Recorder.latency obs ~component:"rt.mttr"))
        ih is_ ws
        (Network.messages_dropped net)
        (Network.messages_duplicated net)
        (Network.messages_reordered net)
        (Network.messages_corrupted net)
        causes.Network.by_rate causes.Network.by_down_host
        causes.Network.by_partition causes.Network.by_no_receiver
        causes.Network.by_corruption
    end
    else begin
      Format.printf "%-10s %-10s %-8s %-8s %-8s@." "window s" "drop" "issued" "ok" "goodput";
      List.iteri
        (fun i v ->
          if i < steps then
            Format.printf "%4.1f-%-5.1f %-10.2f %-8d %-8d %5.1f%%@."
              (float_of_int i *. step_width)
              (float_of_int (i + 1) *. step_width)
              v issued.(i) ok.(i)
              (if issued.(i) = 0 then 100.0
               else 100.0 *. float_of_int ok.(i) /. float_of_int issued.(i)))
        values;
      Format.printf
        "@.%d retransmissions, %d exhausted budgets, %d cancelled calls; %d calls failed@."
        retries giveups cancels !giveup_errors;
      let hist_line name h =
        match h with
        | Some h ->
            Format.printf "%s: %d samples, p50 %.0f ms, p99 %.0f ms@." name
              (Legion_util.Stats.Histogram.total h)
              (1000.0 *. Legion_util.Stats.Histogram.percentile h 50.0)
              (1000.0 *. Legion_util.Stats.Histogram.percentile h 99.0)
        | None -> Format.printf "%s: no samples@." name
      in
      hist_line "recovery latency" (Recorder.latency obs ~component:"rt.recovery");
      hist_line "mttr" (Recorder.latency obs ~component:"rt.mttr");
      let ih, is_, ws = Network.messages_by_tier net in
      Format.printf "messages: %d intra-host, %d intra-site, %d wide-area (%d dropped)@."
        ih is_ ws
        (Network.messages_dropped net);
      let dup = Network.messages_duplicated net
      and reord = Network.messages_reordered net
      and corr = Network.messages_corrupted net in
      if dup + reord + corr > 0 then
        Format.printf "adversary: %d duplicated, %d reordered, %d corrupted@."
          dup reord corr;
      let c = Network.drop_causes net in
      Format.printf
        "drops: %d rate, %d down host, %d partition, %d no receiver, %d corruption@."
        c.Network.by_rate c.Network.by_down_host c.Network.by_partition
        c.Network.by_no_receiver c.Network.by_corruption
    end
  in
  let info =
    Cmd.info "faults"
      ~doc:
        "Run an open-loop workload under a scripted fault schedule (drop-rate \
         ramp, site partition, host crash) and report goodput and retry traffic."
  in
  Cmd.v info
    Term.(
      const run $ sites_arg $ seed_arg $ ramp_arg $ duration_arg $ period_arg
      $ partition_arg $ crash_arg $ duplicate_arg $ corrupt_arg $ reorder_arg
      $ json_arg)

(* --- chaos --- *)

let cmd_chaos =
  let module Schedule = Legion_chaos.Schedule in
  let module Explorer = Legion_chaos.Explorer in
  let schedules_arg =
    Arg.(value & opt int 25
         & info [ "schedules" ] ~docv:"N"
             ~doc:"Seeded schedules to generate and run (ignored with \
                   $(b,--replay)).")
  in
  let rounds_arg =
    Arg.(value & opt int 16
         & info [ "rounds" ] ~docv:"N" ~doc:"Workload rounds per schedule.")
  in
  let replay_arg =
    Arg.(value & opt (some file) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay one schedule from its serialized artifact instead \
                   of generating a fleet.")
  in
  let no_dedup_arg =
    Arg.(value & flag & info [ "no-dedup" ]
         ~doc:"Disable the runtime's exactly-once dedup cache (a \
               duplication-heavy schedule is then expected to detect double \
               applies).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
         ~doc:"Emit one JSON report row per schedule.")
  in
  (* A failing schedule is shrunk to a locally minimal replayable
     artifact; the exit code is the gate. *)
  let artifact = "E22_FAILING_SCHEDULE.txt" in
  let fail_schedule ~dedup ~json sch rep =
    let min_sch, min_rep = Explorer.shrink ~dedup sch rep in
    Out_channel.with_open_text artifact (fun oc ->
        output_string oc (Schedule.to_string min_sch));
    if json then
      print_endline (Explorer.report_json min_sch min_rep)
    else begin
      Format.printf "schedule (seed %Ld) violated invariants:@."
        sch.Schedule.seed;
      List.iter (Format.printf "  %s@.") min_rep.Explorer.violations;
      Format.printf
        "minimized to %d steps; replay with  legion-sim chaos --replay %s@."
        (List.length min_sch.Schedule.steps)
        artifact
    end;
    exit 1
  in
  let run seed schedules rounds replay no_dedup json =
    let dedup = not no_dedup in
    match replay with
    | Some file -> (
        let text = In_channel.with_open_text file In_channel.input_all in
        match Schedule.of_string text with
        | Error msg ->
            Format.eprintf "%s: %s@." file msg;
            exit 2
        | Ok sch ->
            let rep = Explorer.run ~dedup sch in
            if json then print_endline (Explorer.report_json sch rep)
            else begin
              Format.printf "%a@." Schedule.pp sch;
              Format.printf
                "ledger: %d acked, %d recorded, %d double applies, %d dedup \
                 hits@."
                rep.Explorer.ledger_acked rep.Explorer.ledger_recorded
                rep.Explorer.double_applies rep.Explorer.dedup_hits;
              Format.printf
                "txns: %d acked, %d committed, %d compensated; group: %d \
                 acked@."
                rep.Explorer.txns_acked rep.Explorer.txns_committed
                rep.Explorer.txns_compensated rep.Explorer.group_acked;
              Format.printf
                "adversary: %d duplicated, %d reordered, %d corrupted, %d \
                 dropped (%d by corruption), %d crashes@."
                rep.Explorer.duplicated rep.Explorer.reordered
                rep.Explorer.corrupted rep.Explorer.dropped
                rep.Explorer.drops_corrupt rep.Explorer.crashes;
              if rep.Explorer.violations = [] then
                Format.printf "all invariants held@."
              else
                List.iter
                  (Format.printf "violation: %s@.")
                  rep.Explorer.violations
            end;
            if Explorer.failed rep then exit 1)
    | None ->
        let base = Int64.of_int seed in
        for i = 1 to schedules do
          let sch =
            Schedule.generate ~rounds ~seed:(Int64.add base (Int64.of_int i)) ()
          in
          let rep = Explorer.run ~dedup sch in
          if json then print_endline (Explorer.report_json sch rep)
          else
            Format.printf "schedule %3d/%d (seed %Ld): %s@." i schedules
              sch.Schedule.seed
              (if Explorer.failed rep then "FAIL" else "ok");
          if Explorer.failed rep then fail_schedule ~dedup ~json sch rep
        done;
        if not json then
          Format.printf "%d schedules, zero invariant violations@." schedules
  in
  let info =
    Cmd.info "chaos"
      ~doc:
        "Run seeded adversarial fault schedules against the composed ledger + \
         transaction + fenced-group workload and audit exactly-once and \
         atomicity invariants (E22). A failing schedule is shrunk to a \
         replayable artifact and the command exits non-zero."
  in
  Cmd.v info
    Term.(
      const run $ seed_arg $ schedules_arg $ rounds_arg $ replay_arg
      $ no_dedup_arg $ json_arg)

(* --- overload --- *)

let cmd_overload =
  let rates_arg =
    Arg.(value & opt string "0.5,1.0,1.5,2.0,2.5"
         & info [ "rates" ] ~docv:"M0,M1,..."
             ~doc:"Offered-load ramp as multiples of the measured saturation \
                   rate, one step each.")
  in
  let step_arg =
    Arg.(value & opt float 5.0
         & info [ "step" ] ~docv:"S" ~doc:"Virtual seconds per ramp step.")
  in
  let service_arg =
    Arg.(value & opt float 0.02
         & info [ "service" ] ~docv:"S"
             ~doc:"Service time of the serial bottleneck object.")
  in
  let no_protection_arg =
    Arg.(value & flag & info [ "no-protection" ]
         ~doc:"Disable admission control and circuit breakers (the \
               collapse baseline).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the report as one JSON object (per-step goodput, shed \
               and breaker counts, message totals, rt.mttr percentiles).")
  in
  let run sites seed rates step service no_protection json =
    let slow_unit = "cli.slow_counter" in
    let factory (ctx : Runtime.ctx) : Impl.part =
      let eng = Runtime.sim ctx.Runtime.rt in
      let n = ref 0 in
      let busy_until = ref 0.0 in
      let serve k reply =
        let start = Float.max (Legion_sim.Engine.now eng) !busy_until in
        busy_until := start +. service;
        ignore
          (Legion_sim.Engine.schedule_at eng ~time:!busy_until (fun () ->
               k reply))
      in
      Impl.part
        ~methods:
          [
            ( "Increment",
              fun _ args _ k ->
                match args with
                | [ Value.Int d ] ->
                    n := !n + d;
                    serve k (Ok (Value.Int !n))
                | _ -> Impl.bad_args k "Increment expects one int" );
            ("Get", fun _ _ _ k -> serve k (Ok (Value.Int !n)));
          ]
        ~save:(fun () -> Value.Int !n)
        ~restore:(fun v ->
          match v with
          | Value.Int i ->
              n := i;
              Ok ()
          | _ -> Error "bad counter state")
        slow_unit
    in
    Impl.register slow_unit factory;
    let retry =
      {
        Legion_rt.Retry.max_attempts = 6;
        attempt_timeout = 0.05;
        multiplier = 2.0;
        jitter = 0.1;
      }
    in
    let rt_config =
      let common = { Runtime.default_config with call_timeout = 1.5; retry } in
      if no_protection then common
      else
        {
          common with
          admission =
            Some
              {
                Runtime.max_inflight = 4;
                max_queue = 16;
                retry_after_hint = service;
              };
          breaker = Some Legion_rt.Breaker.default_config;
        }
    in
    Impl.register counter_unit counter_factory;
    let sys =
      System.boot ~seed:(Int64.of_int seed) ~rt_config ~sites:(parse_sites sites) ()
    in
    let ctx = System.client sys () in
    let cls =
      Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
        ~name:"SlowCounter" ~units:[ slow_unit ] ()
    in
    let obj = Api.create_object_exn sys ctx ~cls ~eager:true () in
    ignore (Api.call sys ctx ~dst:obj ~meth:"Get" ~args:[]);
    let warm = 20 in
    let t_warm = System.now sys in
    for _ = 1 to warm do
      ignore (Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ])
    done;
    let saturation = float_of_int warm /. (System.now sys -. t_warm) in
    let multipliers =
      List.map float_of_string (String.split_on_char ',' rates)
    in
    let steps = List.length multipliers in
    if steps = 0 then failwith "--rates needs at least one value";
    let sim = System.sim sys and obs = System.obs sys and rt = System.rt sys in
    let net = System.net sys in
    let mark = Recorder.total obs in
    let t0 = System.now sys in
    let t_end = t0 +. (float_of_int steps *. step) in
    let issued = Array.make steps 0
    and ok = Array.make steps 0
    and failed = Array.make steps 0 in
    Script.load_ramp sim ~start:t0 ~until:(t_end -. 1e-9)
      ~steps:(max 1 (steps - 1))
      ~rates:(List.map (fun m -> m *. saturation) multipliers)
      (fun _ ->
        let i =
          min (steps - 1) (int_of_float ((System.now sys -. t0) /. step))
        in
        issued.(i) <- issued.(i) + 1;
        Runtime.invoke ctx ~max_rebinds:0 ~dst:obj ~meth:"Increment"
          ~args:[ Value.Int 1 ]
          (function
            | Ok _ -> ok.(i) <- ok.(i) + 1
            | Error _ -> failed.(i) <- failed.(i) + 1));
    System.run sys;
    let events = Recorder.events_since obs mark in
    let count p = Trace.count_of p events in
    let sheds = Runtime.total_sheds rt in
    let opens = count (Trace.breaker_open ())
    and probes = count (Trace.breaker_probe ())
    and closes = count (Trace.breaker_close ())
    and retries = count (Trace.retry ()) in
    let hist_json name h =
      match h with
      | None -> Printf.sprintf "\"%s\":{\"samples\":0}" name
      | Some h ->
          let module H = Legion_util.Stats.Histogram in
          Printf.sprintf
            "\"%s\":{\"samples\":%d,\"p50_ms\":%.1f,\"p90_ms\":%.1f,\"p99_ms\":%.1f}"
            name (H.total h)
            (1000.0 *. H.percentile h 50.0)
            (1000.0 *. H.percentile h 90.0)
            (1000.0 *. H.percentile h 99.0)
    in
    if json then begin
      let step_json i m =
        Printf.sprintf
          "{\"offered\":%.2f,\"rate\":%.2f,\"issued\":%d,\"ok\":%d,\
           \"failed\":%d,\"goodput\":%.2f}"
          m (m *. saturation) issued.(i) ok.(i) failed.(i)
          (float_of_int ok.(i) /. step)
      in
      let ih, is_, ws = Network.messages_by_tier net in
      Format.printf
        "{\"saturation\":%.2f,\"protected\":%b,\"steps\":[%s],\"sheds\":%d,\
         \"breaker\":{\"opens\":%d,\"probes\":%d,\"closes\":%d},\"retries\":%d,\
         %s,\"messages\":{\"intra_host\":%d,\"intra_site\":%d,\"wide_area\":%d,\
         \"messages_dropped\":%d}}@."
        saturation (not no_protection)
        (String.concat "," (List.mapi step_json multipliers))
        sheds opens probes closes retries
        (hist_json "mttr" (Recorder.latency obs ~component:"rt.mttr"))
        ih is_ ws
        (Network.messages_dropped net)
    end
    else begin
      Format.printf "measured saturation %.1f calls/s; protection %s@.@."
        saturation
        (if no_protection then "off" else "on");
      Format.printf "%-8s %-8s %-8s %-8s %-10s@." "offered" "issued" "ok"
        "failed" "goodput/s";
      List.iteri
        (fun i m ->
          Format.printf "%-8s %-8d %-8d %-8d %-10.1f@."
            (Printf.sprintf "%.1fx" m)
            issued.(i) ok.(i) failed.(i)
            (float_of_int ok.(i) /. step))
        multipliers;
      Format.printf
        "@.%d sheds, %d retransmissions; breaker: %d opens, %d probes, %d \
         closes; %d messages dropped@."
        sheds retries opens probes closes
        (Network.messages_dropped net)
    end
  in
  let info =
    Cmd.info "overload"
      ~doc:
        "Drive a serial-service object through an open-loop saturation ramp \
         and report goodput, shedding, and circuit-breaker activity."
  in
  Cmd.v info
    Term.(
      const run $ sites_arg $ seed_arg $ rates_arg $ step_arg $ service_arg
      $ no_protection_arg $ json_arg)

(* --- recover --- *)

let cmd_recover =
  let duration_arg =
    Arg.(value & opt float 20.0
         & info [ "duration" ] ~docv:"S" ~doc:"Virtual seconds of workload.")
  in
  let period_arg =
    Arg.(value & opt float 0.1
         & info [ "period" ] ~docv:"S" ~doc:"Seconds between calls (open loop).")
  in
  let checkpoint_arg =
    Arg.(value & opt float 1.0
         & info [ "checkpoint-period" ] ~docv:"S"
             ~doc:"Seconds between Magistrate checkpoint sweeps.")
  in
  let heartbeat_arg =
    Arg.(value & opt float 0.25
         & info [ "heartbeat-period" ] ~docv:"S"
             ~doc:"Seconds between Host Object heartbeat probes.")
  in
  let threshold_arg =
    Arg.(value & opt int 3
         & info [ "threshold" ] ~docv:"N"
             ~doc:"Missed heartbeats before a host is confirmed dead.")
  in
  let crash_arg =
    Arg.(value & opt float 5.0
         & info [ "crash" ] ~docv:"T"
             ~doc:"Power-fail a non-infrastructure host at T.")
  in
  let reboot_arg =
    Arg.(value & opt float 5.0
         & info [ "reboot-after" ] ~docv:"W"
             ~doc:"Seconds after the crash at which the host reboots.")
  in
  let run sites seed duration period checkpoint_period heartbeat_period
      threshold crash reboot_after =
    let sys = boot_system ~sites ~seed in
    let ctx = System.client sys () in
    let cls =
      Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Counter"
        ~units:[ counter_unit ] ()
    in
    let n_objects = 8 in
    let objs =
      Array.init n_objects (fun _ -> Api.create_object_exn sys ctx ~cls ~eager:true ())
    in
    Array.iter (fun o -> ignore (Api.call sys ctx ~dst:o ~meth:"Get" ~args:[])) objs;
    let sim = System.sim sys and net = System.net sys and obs = System.obs sys in
    let mark = Recorder.total obs in
    let t0 = System.now sys in
    let t_end = t0 +. duration in
    System.enable_recovery sys ~checkpoint_period ~heartbeat_period ~threshold
      ~until:t_end ();
    let infra = List.map (fun s -> List.hd s.System.net_hosts) (System.sites sys) in
    let victim =
      match List.filter (fun h -> not (List.mem h infra)) (Network.hosts net) with
      | h :: _ -> h
      | [] -> failwith "recover needs a non-infrastructure host (use site:2 or more)"
    in
    Script.at sim ~time:(t0 +. crash) (fun () ->
        Runtime.power_fail (System.rt sys) victim);
    Script.at sim ~time:(t0 +. crash +. reboot_after) (fun () ->
        Network.set_host_up net victim true);
    let acked = Array.make n_objects 0 in
    let prng = Prng.create ~seed:(Int64.of_int (seed + 11)) in
    Script.every sim ~period ~until:(t_end -. 1e-9) (fun () ->
        let i = Prng.int prng n_objects in
        Runtime.invoke ctx ~dst:objs.(i) ~meth:"Increment" ~args:[ Value.Int 1 ]
          (function
            | Ok (Value.Int n) -> acked.(i) <- max acked.(i) n
            | Ok _ | Error _ -> ()));
    System.run sys;
    let events = Recorder.events_since obs mark in
    let count p = Trace.count_of p events in
    Format.printf "power-failed host %d at %.1f s, rebooted at %.1f s@." victim
      crash (crash +. reboot_after);
    Format.printf
      "events: %d checkpoints, %d suspects, %d confirmed dead, %d reactivations, %d fenced@."
      (count (Trace.checkpoint ()))
      (count (Trace.suspect ()))
      (count (Trace.confirm_dead ()))
      (count (Trace.reactivate ()))
      (count (Trace.fence ()));
    let lost = ref 0 and checked = ref 0 in
    Array.iteri
      (fun i o ->
        match Api.call sys ctx ~dst:o ~meth:"Get" ~args:[] with
        | Ok (Value.Int n) ->
            incr checked;
            if n < acked.(i) then lost := !lost + (acked.(i) - n)
        | Ok _ | Error _ -> ())
      objs;
    Format.printf "state: %d/%d objects answered; %d acked updates lost@."
      !checked n_objects !lost;
    (match Recorder.latency obs ~component:"rt.mttr" with
    | Some h ->
        Format.printf "mttr: %d samples, p50 %.2f s, p99 %.2f s@."
          (Legion_util.Stats.Histogram.total h)
          (Legion_util.Stats.Histogram.percentile h 50.0)
          (Legion_util.Stats.Histogram.percentile h 99.0)
    | None -> Format.printf "mttr: no samples@.")
  in
  let info =
    Cmd.info "recover"
      ~doc:
        "Power-fail a host under an open-loop workload with checkpointing and \
         heartbeat failure detection armed, and report detection events, lost \
         updates, and MTTR."
  in
  Cmd.v info
    Term.(
      const run $ sites_arg $ seed_arg $ duration_arg $ period_arg
      $ checkpoint_arg $ heartbeat_arg $ threshold_arg $ crash_arg $ reboot_arg)

(* --- replicate --- *)

let cmd_replicate =
  let module Group_part = Legion_repl.Group_part in
  let module Repair = Legion_repl.Repair in
  let sites_arg =
    let doc = "Topology: comma-separated site:hosts pairs, e.g. uva:4,doe:8." in
    Arg.(
      value
      & opt string "east:4,west:4,south:4"
      & info [ "sites" ] ~docv:"SPEC" ~doc)
  in
  let replicas_arg =
    Arg.(value & opt int 3
         & info [ "replicas" ] ~docv:"R" ~doc:"Replication factor.")
  in
  let kills_arg =
    Arg.(value & opt int 2
         & info [ "kills" ] ~docv:"N"
             ~doc:"Hosts to crash, one every $(b,--kill-every) seconds.")
  in
  let kill_every_arg =
    Arg.(value & opt float 4.0
         & info [ "kill-every" ] ~docv:"S" ~doc:"Seconds between kills.")
  in
  let period_arg =
    Arg.(value & opt float 0.05
         & info [ "period" ] ~docv:"S" ~doc:"Seconds between calls (open loop).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the repair and fencing reports as JSON on stdout.")
  in
  let run sites seed replicas kills kill_every period json =
    (* Phase 1: kill sweep against an armed repair manager. *)
    let sys = boot_system ~sites ~seed in
    let ctx = System.client sys () in
    let net = System.net sys
    and rt = System.rt sys
    and sim = System.sim sys
    and obs = System.obs sys in
    let cls =
      Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Counter"
        ~units:[ counter_unit ] ()
    in
    let loid = Api.create_object_exn sys ctx ~cls () in
    let opr =
      Opr.make ~kind:Well_known.kind_app
        ~units:[ counter_unit; Well_known.unit_object ]
        ()
    in
    (* Workers only — index 0 of each site hosts the infrastructure.
       Round-robin across sites so replicas spread before they stack. *)
    let site_list = System.sites sys in
    let max_w =
      List.fold_left (fun a s -> max a (List.length s.System.net_hosts)) 0
        site_list
    in
    let workers =
      List.concat
        (List.init (max 0 (max_w - 1)) (fun i ->
             List.filter_map
               (fun s -> List.nth_opt s.System.net_hosts (i + 1))
               site_list))
    in
    if List.length workers < replicas + kills then
      failwith
        (Printf.sprintf
           "topology has %d worker hosts; need at least replicas + kills = %d"
           (List.length workers) (replicas + kills));
    let hosts = List.filteri (fun i _ -> i < replicas) workers in
    let mgr =
      match
        Api.sync sys (fun k ->
            Repair.deploy ~ctx ~net ~loid ~opr ~hosts ~pool:workers
              ~semantic:Legion_naming.Address.Ordered_failover
              ~register_with:cls k)
      with
      | Ok m -> m
      | Error e -> failwith ("replicate: deploy: " ^ Err.to_string e)
    in
    let t0 = System.now sys in
    let t_end = t0 +. (kill_every *. float_of_int (kills + 1)) in
    Repair.start mgr ~period:(kill_every /. 8.0) ~until:t_end;
    let mark = Recorder.total obs in
    for i = 1 to kills do
      Script.at sim ~time:(t0 +. (float_of_int i *. kill_every)) (fun () ->
          match Repair.replica_hosts mgr with
          | h :: _ -> Runtime.crash_host rt h
          | [] -> ())
    done;
    let ok = ref 0 and total = ref 0 in
    Script.every sim ~period ~until:(t_end -. 1e-9) (fun () ->
        incr total;
        Runtime.invoke ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 1 ]
          (function Ok _ -> incr ok | Error _ -> ()));
    System.run sys;
    let events = Recorder.events_since obs mark in
    let lost = Trace.count_of (Trace.replica_lost ~loid ()) events in
    let repaired = Trace.count_of (Trace.replica_repair ~loid ()) events in
    let availability = 100.0 *. float_of_int !ok /. float_of_int !total in
    (* Phase 2: fenced 3/2 split and heal on a fresh system. *)
    Group_part.register ();
    let sys2 = boot_system ~sites ~seed:(seed + 1) in
    let n_sites = List.length (System.sites sys2) in
    if n_sites < 2 then failwith "replicate needs at least two sites";
    let minority_site = n_sites - 1 in
    let ctx2 = System.client sys2 () in
    let ctx_min = System.client sys2 ~site:minority_site () in
    let counter_cls =
      Api.derive_class_exn sys2 ctx2 ~parent:Well_known.legion_object
        ~name:"Counter" ~units:[ counter_unit ] ()
    in
    let group_cls =
      Api.derive_class_exn sys2 ctx2 ~parent:Well_known.legion_object
        ~name:"Group" ~units:[ Group_part.unit_name ] ()
    in
    let pinned cls s =
      Api.create_object_exn sys2 ctx2 ~cls ~eager:true
        ~magistrate:(System.site sys2 s).System.magistrate ()
    in
    let g_maj = pinned group_cls 0 in
    let g_min = pinned group_cls minority_site in
    let members =
      [
        pinned counter_cls 0; pinned counter_cls 0; pinned counter_cls 0;
        pinned counter_cls minority_site; pinned counter_cls minority_site;
      ]
    in
    let configure g =
      List.iter
        (fun m ->
          ignore
            (Api.call_exn sys2 ctx2 ~dst:g ~meth:"AddMember"
               ~args:[ Loid.to_value m ]))
        members;
      ignore
        (Api.call_exn sys2 ctx2 ~dst:g ~meth:"SetMode"
           ~args:[ Value.Str "quorum" ]);
      ignore
        (Api.call_exn sys2 ctx2 ~dst:g ~meth:"SetFenced"
           ~args:[ Value.Bool true ])
    in
    configure g_maj;
    configure g_min;
    let invoke_via c g =
      Api.call sys2 c ~dst:g ~meth:"Invoke"
        ~args:[ Value.Str "Increment"; Value.List [ Value.Int 1 ] ]
    in
    ignore (invoke_via ctx2 g_maj);
    ignore (invoke_via ctx_min g_min);
    System.run sys2;
    let net2 = System.net sys2 in
    let cut p =
      for i = 0 to minority_site - 1 do
        Network.set_partitioned net2 i minority_site p
      done
    in
    cut true;
    let mark2 = Recorder.total (System.obs sys2) in
    let maj_ok = ref 0 and min_fenced = ref 0 in
    for _ = 1 to 3 do
      (match invoke_via ctx2 g_maj with Ok _ -> incr maj_ok | Error _ -> ());
      match invoke_via ctx_min g_min with
      | Error (Err.No_quorum _) -> incr min_fenced
      | _ -> ()
    done;
    ignore (Repair.reconcile_on_heal ctx2 ~net:net2 ~groups:[ g_maj ]);
    cut false;
    System.run sys2;
    ignore (Api.call_exn sys2 ctx2 ~dst:g_maj ~meth:"Reconcile" ~args:[]);
    let divergent =
      match Api.call_exn sys2 ctx2 ~dst:g_maj ~meth:"Reconcile" ~args:[] with
      | Value.Record fields -> (
          match List.assoc_opt "divergent" fields with
          | Some (Value.Int d) -> d
          | _ -> -1)
      | _ -> -1
    in
    let events2 = Recorder.events_since (System.obs sys2) mark2 in
    let fenced_events = Trace.count_of (Trace.no_quorum ~loid:g_min ()) events2 in
    let reconciles = Trace.count_of (Trace.reconcile ~loid:g_maj ()) events2 in
    if json then
      Printf.printf
        "{\"repair\":{\"replicas\":%d,\"kills\":%d,\"availability_pct\":%.2f,\
         \"calls\":%d,\"lost\":%d,\"repaired\":%d,\"final_factor\":%d},\
         \"fencing\":{\"majority_commits\":%d,\"minority_fenced\":%d,\
         \"noquorum_events\":%d,\"reconciles\":%d,\"divergent_after\":%d}}\n"
        replicas kills availability !total lost repaired
        (Repair.replica_count mgr) !maj_ok !min_fenced fenced_events reconciles
        divergent
    else begin
      Format.printf
        "kill sweep: %d replicas, %d kills — %.2f%% of %d calls answered@."
        replicas kills availability !total;
      Format.printf
        "repair: %d replicas lost, %d repaired; replication factor back at %d@."
        lost repaired
        (Repair.replica_count mgr);
      Format.printf
        "fencing: %d/3 majority writes committed, %d/3 minority writes \
         refused with NoQuorum (%d events)@."
        !maj_ok !min_fenced fenced_events;
      Format.printf
        "anti-entropy: %d reconcile sweeps after the heal; %d members still \
         divergent@."
        reconciles divergent
    end
  in
  let info =
    Cmd.info "replicate"
      ~doc:
        "Run a self-healing replica set through a host-kill sweep, then a \
         fenced quorum group through a network split and heal, and report \
         availability, repair, fencing, and anti-entropy activity."
  in
  Cmd.v info
    Term.(
      const run $ sites_arg $ seed_arg $ replicas_arg $ kills_arg
      $ kill_every_arg $ period_arg $ json_arg)

(* --- idl --- *)

(* --- scale --- *)

let cmd_scale =
  let objects_arg =
    let doc = "Cache-kernel object population." in
    Arg.(value & opt int 20_000 & info [ "objects" ] ~docv:"N" ~doc)
  in
  let calls_arg =
    let doc = "Cache-kernel invocation count." in
    Arg.(value & opt int 20_000 & info [ "calls" ] ~docv:"N" ~doc)
  in
  let scale_sites_arg =
    let doc = "Number of sites." in
    Arg.(value & opt int 8 & info [ "sites" ] ~docv:"N" ~doc)
  in
  let hosts_arg =
    let doc = "Hosts per site." in
    Arg.(value & opt int 8 & info [ "hosts-per-site" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Raw calendar-queue kernel event budget." in
    Arg.(value & opt int 1_000_000 & info [ "queue-events" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc =
      "Emit the deterministic report as JSON on stdout (same seed, same \
       bytes) and nothing else."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run seed objects calls sites hosts_per_site queue_events json =
    let cfg =
      {
        Legion.Planet.smoke with
        Legion.Planet.seed = Int64.of_int seed;
        sites;
        hosts_per_site;
        objects;
        calls;
        queue_events;
      }
    in
    if json then
      print_string (Legion.Planet.to_json (Legion.Planet.run cfg))
    else begin
      let progress msg = Format.printf "  %s@." msg in
      let c0 = Sys.time () in
      let report = Legion.Planet.run ~progress cfg in
      let cpu = Sys.time () -. c0 in
      Format.printf "@.%-8s %10s %12s %10s %8s@." "kernel" "events"
        "virt clock" "msgs" "drops";
      List.iter
        (fun k ->
          Format.printf "%-8s %10d %12.3f %10d %8d@." k.Legion.Planet.k_name
            k.Legion.Planet.k_events k.Legion.Planet.k_clock
            k.Legion.Planet.k_msgs k.Legion.Planet.k_drops)
        report.Legion.Planet.kernels;
      Format.printf "@.%d events total, %.1f s cpu (%.0f events/s)@."
        report.Legion.Planet.total_events cpu
        (float_of_int report.Legion.Planet.total_events /. Float.max 1e-9 cpu)
    end
  in
  let info =
    Cmd.info "scale"
      ~doc:
        "Run the E18 planetary sweep kernels (queue, cache, tree, clone) at a \
         configurable scale."
  in
  Cmd.v info
    Term.(
      const run $ seed_arg $ objects_arg $ calls_arg $ scale_sites_arg
      $ hosts_arg $ queue_arg $ json_arg)

(* --- elastic --- *)

let cmd_elastic =
  let baseline_arg =
    Arg.(
      value & flag
      & info [ "baseline" ]
          ~doc:
            "Run without the elastic machinery (the static comparison run).")
  in
  let json_arg =
    let doc =
      "Emit the deterministic report as JSON on stdout (same seed, same \
       bytes) and nothing else."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run seed baseline json =
    let r =
      Legion.Elastic.run_scenario ~seed:(Int64.of_int seed)
        ~elastic:(not baseline) ()
    in
    if json then print_string (Legion.Elastic.scenario_json r ^ "\n")
    else begin
      Format.printf "E19 flash crowd, %s@."
        (if r.Legion.Elastic.elastic then "elastic" else "baseline");
      Format.printf
        "%d arrivals: %d work calls (%d ok), %d creates acked, %d sheds, %d \
         errors@."
        r.Legion.Elastic.arrivals r.Legion.Elastic.works r.Legion.Elastic.oks
        r.Legion.Elastic.created r.Legion.Elastic.sheds
        r.Legion.Elastic.errors;
      Format.printf
        "latency: p50 %.2f ms, p99 %.2f ms; settled flash window: p50 %.2f \
         ms, p99 %.2f ms@."
        r.Legion.Elastic.p50_ms r.Legion.Elastic.p99_ms
        r.Legion.Elastic.flash_p50_ms r.Legion.Elastic.flash_p99_ms;
      Format.printf
        "max per-host share %.1f%%; %d clones, %d merges, %d migrations, %d \
         splits%s@."
        (100.0 *. r.Legion.Elastic.max_host_share)
        r.Legion.Elastic.clones r.Legion.Elastic.merges
        r.Legion.Elastic.moves r.Legion.Elastic.splits
        (if r.Legion.Elastic.retier then "; agent tree re-tiered" else "")
    end
  in
  let info =
    Cmd.info "elastic"
      ~doc:
        "Run the E19 flash-crowd scenario and report how the autonomic \
         machinery (class cloning, object migration, Jurisdiction splitting) \
         absorbed it."
  in
  Cmd.v info Term.(const run $ seed_arg $ baseline_arg $ json_arg)

(* --- txn --- *)

let cmd_txn =
  let module Persistent = Legion_store.Persistent in
  let module Participant = Legion_txn.Participant in
  let module Coordinator = Legion_txn.Coordinator in
  let rounds_arg =
    Arg.(value & opt int 20
         & info [ "rounds" ] ~docv:"N" ~doc:"Transactions to submit.")
  in
  let mode_arg =
    Arg.(value & opt (enum [ ("2pc", `Two_phase); ("saga", `Saga); ("mix", `Mix) ]) `Mix
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"Commit protocol: $(b,2pc), $(b,saga), or a seeded $(b,mix).")
  in
  let crash_arg =
    Arg.(value & flag
         & info [ "crash-coordinator" ]
             ~doc:
               "Power-fail the coordinator's host right after a commit \
                decision is acknowledged mid-run; recovery must resume the \
                durable decision.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:
               "Emit the deterministic report as JSON on stdout (same seed, \
                same bytes) and nothing else.")
  in
  let run sites seed rounds mode crash json =
    let sys = boot_system ~sites ~seed in
    let ctx = System.client sys () in
    let rt = System.rt sys and net = System.net sys and obs = System.obs sys in
    let store_name = fst (List.hd (parse_sites sites)) in
    let part_cls =
      Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
        ~name:"TxnCounter"
        ~units:[ counter_unit; Participant.unit_name ]
        ()
    in
    let coord_cls =
      Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
        ~name:"TxnCoordinator" ~units:[ Coordinator.unit_name ] ()
    in
    let infra = List.map (fun s -> List.hd s.System.net_hosts) (System.sites sys) in
    let participants =
      Array.init 6 (fun _ -> Api.create_object_exn sys ctx ~cls:part_cls ~eager:true ())
    in
    (* The coordinator must be crashable without beheading its site's
       externally-started infrastructure (§4.2.1). *)
    let co, coord_host =
      let rec pick n =
        if n = 0 then failwith "no coordinator landed off-infrastructure"
        else
          let co = Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true () in
          match Runtime.find_proc rt co with
          | Some p when not (List.mem (Runtime.proc_host p) infra) ->
              (co, Runtime.proc_host p)
          | _ -> pick (n - 1)
      in
      pick 16
    in
    (match
       Api.call sys ctx ~dst:co ~meth:"Configure"
         ~args:[ Value.Record [ ("store", Value.Str store_name) ] ]
     with
    | Ok _ -> ()
    | Error e -> failwith ("Configure failed: " ^ Err.to_string e));
    let t0 = System.now sys in
    System.enable_recovery sys ~checkpoint_period:0.5 ~heartbeat_period:0.25
      ~threshold:3
      ~until:(t0 +. float_of_int rounds +. 120.0)
      ();
    System.run_for sys 2.0;
    let mark = Recorder.total obs in
    let prng = Prng.create ~seed:(Int64.of_int (seed + 29)) in
    let acked = ref 0 and aborted = ref 0 and errors = ref 0 in
    for round = 1 to rounds do
      let mode_s =
        match mode with
        | `Two_phase -> "2pc"
        | `Saga -> "saga"
        | `Mix ->
            (* The crash round must be 2PC: only 2PC has a Committing
               window for the crash to strand and recovery to resume. *)
            if crash && round = (rounds / 2) + 1 then "2pc"
            else if Prng.bernoulli prng ~p:0.5 then "2pc"
            else "saga"
      in
      let i = Prng.int prng (Array.length participants) in
      let j = (i + 1 + Prng.int prng 5) mod Array.length participants in
      let d = 1 + Prng.int prng 5 in
      let step dst delta =
        Value.Record
          [
            ("dst", Loid.to_value dst);
            ("meth", Value.Str "Increment");
            ("args", Value.List [ Value.Int delta ]);
            ("cmeth", Value.Str "Increment");
            ("cargs", Value.List [ Value.Int (-delta) ]);
          ]
      in
      (match
         Api.call sys ctx ~dst:co ~meth:"TxnRun"
           ~args:
             [
               Value.Str mode_s;
               Value.List
                 [ step participants.(i) d; step participants.(j) d ];
             ]
       with
      | Ok _ -> incr acked
      | Error (Err.Txn_aborted _) -> incr aborted
      | Error _ -> incr errors);
      if crash && round = (rounds / 2) + 1 then begin
        Runtime.power_fail rt coord_host;
        ignore
          (Legion_sim.Engine.schedule (System.sim sys) ~delay:6.0 (fun () ->
               Network.set_host_up net coord_host true))
      end;
      System.run_for sys 1.0
    done;
    System.run_for sys 30.0;
    System.run sys;
    let events = Recorder.events_since obs mark in
    let count p = Trace.count_of p events in
    (* The E20 audit: atomicity proved from the version history alone. *)
    let store = (System.site sys 0).System.storage in
    let staged = ref 0 and mixed = ref 0 in
    let committed = ref 0 and compensated = ref 0 in
    let ids =
      List.sort_uniq String.compare
        (List.concat_map
           (fun loid ->
             List.filter_map
               (fun (e : Persistent.History.entry) -> e.txn)
               (Persistent.history store ~loid))
           (Persistent.history_loids store))
    in
    List.iter
      (fun id ->
        let marks =
          List.concat_map
            (fun loid ->
              List.filter_map
                (fun (e : Persistent.History.entry) ->
                  if e.txn = Some id then Some e.mark else None)
                (Persistent.history store ~loid))
            (Persistent.history_loids store)
        in
        if List.exists (fun m -> m = Persistent.Staged) marks then incr staged;
        let c = List.exists (fun m -> m = Persistent.Committed) marks in
        let x = List.exists (fun m -> m = Persistent.Compensated) marks in
        if c && x then incr mixed;
        if c then incr committed;
        if x then incr compensated)
      ids;
    let orphaned =
      Array.fold_left
        (fun acc o ->
          match Api.call sys ctx ~dst:o ~meth:"TxnHeld" ~args:[] with
          | Ok (Value.List []) -> acc
          | _ -> acc + 1)
        0 participants
    in
    let indoubt =
      match Api.call sys ctx ~dst:co ~meth:"TxnStats" ~args:[] with
      | Ok (Value.Record fields) -> (
          match List.assoc_opt "indoubt" fields with
          | Some (Value.Int n) -> n
          | _ -> -1)
      | _ -> -1
    in
    if json then
      Printf.printf
        "{\"seed\":%d,\"rounds\":%d,\"acked\":%d,\"aborted\":%d,\"errors\":%d,\
         \"committed\":%d,\"compensated\":%d,\"staged_residue\":%d,\
         \"mixed_marks\":%d,\"orphaned_locks\":%d,\"in_doubt\":%d,\
         \"resumes\":%d,\"prepares\":%d,\"compensations\":%d}\n"
        seed rounds !acked !aborted !errors !committed !compensated !staged
        !mixed orphaned indoubt
        (count (Trace.resume ()))
        (count (Trace.prepare ()))
        (count (Trace.compensate ()))
    else begin
      Format.printf "%d rounds: %d commits acked, %d aborted, %d errors@."
        rounds !acked !aborted !errors;
      Format.printf
        "events: %d prepares, %d commits, %d aborts, %d compensations, %d \
         resumes@."
        (count (Trace.prepare ()))
        (count (Trace.txn_commit ()))
        (count (Trace.txn_abort ()))
        (count (Trace.compensate ()))
        (count (Trace.resume ()));
      Format.printf
        "history audit: %d txns committed, %d compensated, %d staged residue, \
         %d mixed marks@."
        !committed !compensated !staged !mixed;
      Format.printf "locks: %d orphaned; coordinator in doubt: %d@." orphaned
        indoubt;
      if !staged > 0 || !mixed > 0 || orphaned > 0 || indoubt <> 0 then begin
        Format.printf "ATOMICITY VIOLATION@.";
        exit 1
      end
      else Format.printf "atomicity holds: no partial commits@."
    end
  in
  let info =
    Cmd.info "txn"
      ~doc:
        "Drive atomic multi-object invocations (2PC or saga with typed \
         compensations) through a coordinator, optionally power-failing it \
         mid-run, and audit atomicity from the event-sourced version history."
  in
  Cmd.v info
    Term.(
      const run $ sites_arg $ seed_arg $ rounds_arg $ mode_arg $ crash_arg
      $ json_arg)

(* --- tenants --- *)

let cmd_tenants =
  let module Tenants = Legion.Tenants in
  let baseline_arg =
    Arg.(
      value & flag
      & info [ "baseline" ]
          ~doc:
            "Run and report only the quiet arm (every tenant inside its \
             budget); no gates are evaluated.")
  in
  let json_arg =
    let doc =
      "Emit the deterministic report as JSON on stdout (same seed, same \
       bytes) and nothing else."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let max_shift = 25.0 in
  let print_lanes (r : Tenants.report) =
    List.iter
      (fun (l : Tenants.lane) ->
        Format.printf
          "  %-8s %5d sent, %5d ok, %5d shed, %3d errors; p50 %.2f ms, p99 \
           %.2f ms@."
          l.Tenants.tenant l.Tenants.sent l.Tenants.oks l.Tenants.quota_shed
          l.Tenants.errors l.Tenants.p50_ms l.Tenants.p99_ms)
      r.Tenants.lanes
  in
  let run seed baseline json =
    let seed = Int64.of_int seed in
    if baseline then begin
      let r = Tenants.run_scenario ~seed ~noisy:false () in
      if json then print_string (Tenants.scenario_json r ^ "\n")
      else begin
        Format.printf "E21 noisy neighbor, quiet arm@.";
        print_lanes r
      end
    end
    else begin
      let quiet = Tenants.run_scenario ~seed ~noisy:false () in
      let noisy = Tenants.run_scenario ~seed ~noisy:true () in
      let noisy' = Tenants.run_scenario ~seed ~noisy:true () in
      let deterministic =
        String.equal (Tenants.scenario_json noisy)
          (Tenants.scenario_json noisy')
      in
      let p99 r name =
        match Tenants.find_lane r name with
        | Some l -> l.Tenants.p99_ms
        | None -> nan
      in
      let worst_shift =
        List.fold_left
          (fun acc name ->
            Float.max acc (Float.abs (p99 noisy name -. p99 quiet name)))
          0.0 Tenants.well_behaved
      in
      let attributed =
        noisy.Tenants.shed_events >= 1
        && noisy.Tenants.shed_by_offender = noisy.Tenants.shed_events
        && noisy.Tenants.shed_unattributed = 0
      in
      let denied r =
        r.Tenants.eve_probes >= 1
        && r.Tenants.eve_denied = r.Tenants.eve_probes
        && r.Tenants.eve_bindings = 0
        && r.Tenants.deny_by_eve >= r.Tenants.eve_probes
      in
      let clean r =
        List.for_all
          (fun name ->
            match Tenants.find_lane r name with
            | Some l -> l.Tenants.quota_shed = 0 && l.Tenants.errors = 0
            | None -> false)
          Tenants.well_behaved
      in
      let ok =
        deterministic && worst_shift <= max_shift && attributed
        && denied quiet && denied noisy && clean quiet && clean noisy
      in
      if json then
        Format.printf
          "{\"seed\": %Ld, \"quiet\": %s, \"noisy\": %s, \
           \"worst_p99_shift_ms\": %.4f, \"max_p99_shift_ms\": %.1f, \
           \"deterministic\": %b, \"gates_ok\": %b}@."
          seed
          (Tenants.scenario_json quiet)
          (Tenants.scenario_json noisy)
          worst_shift max_shift deterministic ok
      else begin
        Format.printf "E21 noisy neighbor (quiet arm)@.";
        print_lanes quiet;
        Format.printf "E21 noisy neighbor (noisy arm: mallory at 10x budget)@.";
        print_lanes noisy;
        Format.printf
          "worst well-behaved p99 shift %.2f ms (ceiling %.1f)@." worst_shift
          max_shift;
        Format.printf
          "noisy sheds %d: %d attributed to %s, %d unattributed@."
          noisy.Tenants.shed_events noisy.Tenants.shed_by_offender
          Tenants.offender noisy.Tenants.shed_unattributed;
        Format.printf "eve: %d/%d probes denied, %d bindings resolved@."
          noisy.Tenants.eve_denied noisy.Tenants.eve_probes
          noisy.Tenants.eve_bindings;
        Format.printf "deterministic: %b; gates: %s@." deterministic
          (if ok then "pass" else "FAIL")
      end;
      if not ok then exit 1
    end
  in
  let info =
    Cmd.info "tenants"
      ~doc:
        "Run the E21 noisy-neighbor scenario (quiet and noisy arms, same \
         seed) and gate on tenant isolation, shed attribution and denied \
         bindings; exits non-zero on a gate violation."
  in
  Cmd.v info Term.(const run $ seed_arg $ baseline_arg $ json_arg)

let cmd_idl =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"IDL source file.")
  in
  let run file =
    let src = In_channel.with_open_text file In_channel.input_all in
    (* MPL sources open with "mentat class"; CORBA-flavoured ones with
       "interface" (the paper's two IDLs). *)
    let is_mpl =
      let rec first_word i =
        if i >= String.length src then ""
        else if src.[i] = ' ' || src.[i] = '\n' || src.[i] = '\t' then first_word (i + 1)
        else
          let j = ref i in
          while
            !j < String.length src
            && src.[!j] <> ' ' && src.[!j] <> '\n' && src.[!j] <> '\t'
          do
            incr j
          done;
          String.sub src i (!j - i)
      in
      first_word 0 = "mentat"
    in
    let parsed =
      if is_mpl then
        Result.map_error
          (fun e -> Format.asprintf "%a" Legion_idl.Mpl.pp_error e)
          (Legion_idl.Mpl.file src)
      else
        Result.map_error
          (fun e -> Format.asprintf "%a" Legion_idl.Parser.pp_error e)
          (Legion_idl.Parser.file src)
    in
    match parsed with
    | Ok interfaces ->
        List.iter
          (fun i -> Format.printf "%a@.@." Legion_idl.Interface.pp i)
          interfaces
    | Error e ->
        Format.eprintf "%s: %s@." file e;
        exit 1
  in
  let info =
    Cmd.info "idl" ~doc:"Parse and normalize an IDL or MPL file (auto-detected)."
  in
  Cmd.v info Term.(const run $ file_arg)

let () =
  let info =
    Cmd.info "legion-sim" ~version:"1.0"
      ~doc:"Drive the simulated Core Legion Object Model from the command line."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            cmd_boot; cmd_drive; cmd_trace; cmd_soak; cmd_faults; cmd_chaos;
            cmd_overload; cmd_recover; cmd_replicate; cmd_scale; cmd_elastic;
            cmd_txn; cmd_tenants; cmd_idl;
          ]))
