(* Migration and replication — Fig. 11 and §4.3 of the paper, live:

   1. an object is deactivated into an Object Persistent Representation
      and migrated between Jurisdictions with Copy/Move;
   2. a service is replicated at the Legion system level: one LOID, an
      Object Address with several elements, transparent failover when a
      host dies.

   Run with: dune exec examples/migration_replication.exe *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Impl = Legion_core.Impl
module Well_known = Legion_core.Well_known
module Runtime = Legion_rt.Runtime
module Network = Legion_net.Network
module Err = Legion_rt.Err
module System = Legion.System
module Api = Legion.Api

let log_unit = "example.logbook"

(* A logbook: appends entries; its whole history is its state, so
   migration visibly preserves it. *)
let log_factory (_ctx : Runtime.ctx) : Impl.part =
  let entries = ref [] in
  let append _ctx args _env k =
    match args with
    | [ Value.Str s ] ->
        entries := s :: !entries;
        k (Ok (Value.Int (List.length !entries)))
    | _ -> Impl.bad_args k "Append expects one string"
  in
  let read _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.List (List.rev_map (fun s -> Value.Str s) !entries)))
    | _ -> Impl.bad_args k "ReadAll takes no arguments"
  in
  Impl.part
    ~methods:[ ("Append", append); ("ReadAll", read) ]
    ~save:(fun () -> Value.List (List.rev_map (fun s -> Value.Str s) !entries))
    ~restore:(fun v ->
      match v with
      | Value.List vs ->
          entries :=
            List.rev
              (List.filter_map (function Value.Str s -> Some s | _ -> None) vs);
          Ok ()
      | _ -> Error "logbook state must be a list")
    log_unit

let where sys loid =
  match Runtime.find_proc (System.rt sys) loid with
  | Some p ->
      let h = Runtime.proc_host p in
      Printf.sprintf "active on %s" (Network.host_name (System.net sys) h)
  | None -> "inert"

let () =
  Impl.register log_unit log_factory;
  let sys = System.boot ~seed:11L ~sites:[ ("east", 3); ("west", 3) ] () in
  let ctx = System.client sys () in
  let east = System.site sys 0 and west = System.site sys 1 in

  let log_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Logbook"
      ~units:[ log_unit ]
      ~idl:"interface Logbook { Append(s: str): int; ReadAll(): list<str>; }" ()
  in

  (* --- Part 1: migration --- *)
  Format.printf "== migration (Fig. 11) ==@.";
  let book =
    Api.create_object_exn sys ctx ~cls:log_cls ~magistrate:east.System.magistrate ()
  in
  ignore (Api.call_exn sys ctx ~dst:book ~meth:"Append" ~args:[ Value.Str "born in the east" ]);
  Format.printf "logbook %s: %s@." (Loid.to_string book) (where sys book);

  (* Copy east -> west: the OPR now exists in both Jurisdictions. *)
  (match
     Api.call sys ctx ~dst:east.System.magistrate ~meth:"Copy"
       ~args:[ Loid.to_value book; Loid.to_value west.System.magistrate ]
   with
  | Ok _ -> Format.printf "copied to west; after Copy the object is %s@." (where sys book)
  | Error e -> Format.printf "copy failed: %s@." (Err.to_string e));

  (* Move east -> west: east forgets it entirely. *)
  (match
     Api.call sys ctx ~dst:east.System.magistrate ~meth:"Move"
       ~args:[ Loid.to_value book; Loid.to_value west.System.magistrate ]
   with
  | Ok _ -> Format.printf "moved to west@."
  | Error e -> Format.printf "move failed: %s@." (Err.to_string e));

  ignore (Api.call_exn sys ctx ~dst:book ~meth:"Append" ~args:[ Value.Str "woke up in the west" ]);
  Format.printf "after reference: %s@." (where sys book);
  (match Api.call_exn sys ctx ~dst:book ~meth:"ReadAll" ~args:[] with
  | Value.List entries ->
      Format.printf "history (%d entries):@." (List.length entries);
      List.iter
        (function Value.Str s -> Format.printf "  - %s@." s | _ -> ())
        entries
  | _ -> ());

  (* --- Part 2: system-level replication (§4.3) --- *)
  Format.printf "@.== replication (one LOID, many processes) ==@.";
  let service = Api.create_object_exn sys ctx ~cls:log_cls () in
  let replica_hosts =
    [ List.nth east.System.host_objects 1; List.nth west.System.host_objects 1 ]
  in
  let opr =
    Legion_core.Opr.make ~kind:Well_known.kind_app
      ~units:[ log_unit; Well_known.unit_object ]
      ()
  in
  let address =
    match
      Api.sync sys (fun k ->
          Legion_repl.Replicate.deploy_via_hosts ctx ~loid:service ~opr
            ~host_objects:replica_hosts ~semantic:Address.Ordered_failover
            ~register_with:log_cls k)
    with
    | Ok (a, _failed) -> a
    | Error e -> failwith (Err.to_string e)
  in
  Format.printf "service %s replicated at %d addresses: %s@."
    (Loid.to_string service)
    (List.length (Address.elements address))
    (Format.asprintf "%a" Address.pp address);

  ignore
    (Api.call_exn sys ctx ~dst:service ~meth:"Append" ~args:[ Value.Str "hello" ]);
  Format.printf "appended through the replicated address@.";

  (* Kill the primary replica's host: the Object Address semantic fails
     over to the surviving element without the client noticing. *)
  let primary_host = List.nth east.System.net_hosts 1 in
  Runtime.crash_host (System.rt sys) primary_host;
  Format.printf "crashed %s (the primary replica)@."
    (Network.host_name (System.net sys) primary_host);
  (match Api.call sys ctx ~dst:service ~meth:"Append" ~args:[ Value.Str "still here" ] with
  | Ok (Value.Int n) ->
      Format.printf "append succeeded on the surviving replica (entry #%d)@." n
  | Ok v -> Format.printf "odd reply: %s@." (Value.to_string v)
  | Error e -> Format.printf "append failed: %s@." (Err.to_string e));

  Format.printf
    "@.note: system-level replicas do not share state (§4.3) — the paper@.\
     leaves replica coherence to 'object groups' at the application level.@.";
  Format.printf "done in %.3f simulated seconds@." (System.now sys)
