lib/rt/runtime.mli: Err Legion_naming Legion_net Legion_obs Legion_sec Legion_sim Legion_util Legion_wire
