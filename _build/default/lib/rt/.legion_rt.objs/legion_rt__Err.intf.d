lib/rt/err.mli: Format Legion_wire
