lib/rt/err.ml: Format Legion_wire Printf Result String
