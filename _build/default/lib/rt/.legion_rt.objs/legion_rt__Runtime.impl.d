lib/rt/runtime.ml: Err Format Hashtbl Int64 Legion_naming Legion_net Legion_obs Legion_sec Legion_sim Legion_util Legion_wire List Option Printf Result
