(** Magistrates (paper §2.2, §3.8): the "legion.magistrate" unit.

    "A Magistrate is in charge of a Jurisdiction … a set of hosts and
    some aggregate persistent storage. The purpose of a Magistrate is to
    perform the activation, deactivation, and migration of the Legion
    objects under its control." Magistrates are Legion's site-autonomy
    mechanism: an {e activation policy} lets a site refuse requests —
    "member function calls on Magistrates should be thought of as
    requests rather than commands".

    Methods (§3.8): [Activate(obj: loid, hints: record): binding] —
    hints may carry [host: opt<loid>] (the paper's two-LOID overload),
    [stale: opt<address>] (a believed-dead address to supersede) and
    [sched: opt<loid>] (a Scheduling Agent to consult);
    [Deactivate(obj: loid): unit]; [Delete(obj: loid): unit];
    [Copy(obj: loid, to: loid): unit]; [Move(obj: loid, to: loid): unit];
    [SweepIdle(threshold: float): int] — deactivate managed objects that
    received no call for [threshold] virtual seconds ("moving objects
    between Active and Inert states", §3.1);
    [TransferObjects(to: loid, max: int): int] and
    [AdoptObject(obj: loid, opa: any): unit] — the §2.2 splitting
    protocol: hand managed objects to another Magistrate whose
    Jurisdiction shares the storage (the OPR is not copied, only
    responsibility moves, and the class is notified per object);
    plus [StoreObject(obj: loid, opr: blob): unit] (how objects enter a
    Jurisdiction: Create and incoming migrations), jurisdiction
    administration ([AddHost]/[RemoveHost]/[SetActivationPolicy]) and
    introspection ([ListObjects]/[GetJurisdictionInfo]).

    Storage is site infrastructure: a Jurisdiction's disks are
    registered under the jurisdiction's name with {!register_storage}
    and referenced by name from the Magistrate's persistent state —
    Object Persistent Addresses are "only meaningful within the
    Jurisdiction" (§3.1.1). *)

module Impl := Legion_core.Impl
module Value := Legion_wire.Value
module Loid := Legion_naming.Loid
module Policy := Legion_sec.Policy

val unit_name : string
(** ["legion.magistrate"]. *)

val register_storage : string -> Legion_store.Persistent.t -> unit
(** Bind a jurisdiction name to its storage. Idempotent (last wins). *)

val find_storage : string -> Legion_store.Persistent.t option

val state_value :
  ?hosts:Loid.t list ->
  ?activation_policy:Policy.t ->
  jurisdiction:string ->
  unit ->
  Value.t
(** Initial unit state: jurisdiction name (must be registered before
    the Magistrate activates), member Host Object LOIDs, and the
    activation policy (default [Allow_all]). *)

val factory : Impl.factory
val register : unit -> unit
