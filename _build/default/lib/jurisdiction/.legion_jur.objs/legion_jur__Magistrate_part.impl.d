lib/jurisdiction/magistrate_part.ml: Hashtbl Legion_core Legion_naming Legion_obs Legion_rt Legion_sec Legion_store Legion_wire List Option Printf Result
