(** Binary codec for {!Value.t}.

    The encoding is a tagged, length-prefixed format: one tag byte per
    value, big-endian fixed-width scalars, and 32-bit length prefixes for
    strings, lists and records. It is the on-"disk" format of Object
    Persistent Representations and the on-"wire" format of messages.

    [decode (encode v) = Ok v] for every [v] (tested by property tests);
    decoding arbitrary bytes never raises. *)

val encode : Value.t -> string

val decode : string -> (Value.t, string) result
(** Decode a complete buffer; trailing bytes are an error. The error
    string describes the first malformation encountered. Nesting beyond
    256 levels is rejected (stack-safety against crafted inputs);
    legitimate payloads nest a handful of levels. *)

val encoded_size : Value.t -> int
(** Equals [String.length (encode v)] (and {!Value.size_bytes}). *)
