type t =
  | Unit
  | Bool of bool
  | Int of int
  | I64 of int64
  | Float of float
  | Str of string
  | Blob of string
  | List of t list
  | Record of (string * t) list

type error = [ `Wrong_type of string | `Missing_field of string ]

let pp_error ppf = function
  | `Wrong_type s -> Format.fprintf ppf "wrong type: expected %s" s
  | `Missing_field s -> Format.fprintf ppf "missing field: %s" s

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | I64 x, I64 y -> Int64.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y | Blob x, Blob y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Record x, Record y ->
      List.equal (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && equal v1 v2) x y
  | ( (Unit | Bool _ | Int _ | I64 _ | Float _ | Str _ | Blob _ | List _ | Record _),
      _ ) ->
      false

let constructor_rank = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | I64 _ -> 3
  | Float _ -> 4
  | Str _ -> 5
  | Blob _ -> 6
  | List _ -> 7
  | Record _ -> 8

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | I64 x, I64 y -> Int64.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y | Blob x, Blob y -> String.compare x y
  | List x, List y -> List.compare compare x y
  | Record x, Record y ->
      List.compare
        (fun (n1, v1) (n2, v2) ->
          let c = String.compare n1 n2 in
          if c <> 0 then c else compare v1 v2)
        x y
  | ( (Unit | Bool _ | Int _ | I64 _ | Float _ | Str _ | Blob _ | List _ | Record _),
      _ ) ->
      Stdlib.compare (constructor_rank a) (constructor_rank b)

let rec pp ppf = function
  | Unit -> Format.fprintf ppf "()"
  | Bool b -> Format.fprintf ppf "%b" b
  | Int i -> Format.fprintf ppf "%d" i
  | I64 i -> Format.fprintf ppf "%LdL" i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Blob s -> Format.fprintf ppf "<blob:%d>" (String.length s)
  | List vs ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        vs
  | Record fs ->
      let pp_field ppf (n, v) = Format.fprintf ppf "%s=%a" n pp v in
      Format.fprintf ppf "{@[%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_field)
        fs

let to_string v = Format.asprintf "%a" pp v

let of_int i = Int i
let of_string s = Str s
let of_bool b = Bool b
let of_float f = Float f
let of_list f xs = List (List.map f xs)
let of_option f = function None -> List [] | Some x -> List [ f x ]

let record fields =
  let names = List.map fst fields in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Value.record: duplicate field names";
  Record fields

let to_unit = function Unit -> Ok () | _ -> Error (`Wrong_type "unit")
let to_bool = function Bool b -> Ok b | _ -> Error (`Wrong_type "bool")
let to_int = function Int i -> Ok i | _ -> Error (`Wrong_type "int")
let to_i64 = function I64 i -> Ok i | _ -> Error (`Wrong_type "i64")
let to_float = function Float f -> Ok f | _ -> Error (`Wrong_type "float")
let to_str = function Str s -> Ok s | _ -> Error (`Wrong_type "str")
let to_blob = function Blob s -> Ok s | _ -> Error (`Wrong_type "blob")

let to_list f = function
  | List vs ->
      let rec loop acc = function
        | [] -> Ok (List.rev acc)
        | v :: rest -> (
            match f v with Ok x -> loop (x :: acc) rest | Error _ as e -> e)
      in
      loop [] vs
  | _ -> Error (`Wrong_type "list")

let to_option f = function
  | List [] -> Ok None
  | List [ v ] -> ( match f v with Ok x -> Ok (Some x) | Error _ as e -> e)
  | _ -> Error (`Wrong_type "option")

let field v name =
  match v with
  | Record fs -> (
      match List.assoc_opt name fs with
      | Some x -> Ok x
      | None -> Error (`Missing_field name))
  | _ -> Error (`Wrong_type "record")

let field_opt v name =
  match v with Record fs -> List.assoc_opt name fs | _ -> None

let rec depth = function
  | Unit | Bool _ | Int _ | I64 _ | Float _ | Str _ | Blob _ -> 1
  | List vs -> 1 + List.fold_left (fun acc v -> Stdlib.max acc (depth v)) 0 vs
  | Record fs ->
      1 + List.fold_left (fun acc (_, v) -> Stdlib.max acc (depth v)) 0 fs

(* Mirrors the layout produced by Codec.encode: 1 tag byte, then fixed
   8-byte scalars or a 4-byte length prefix for variable parts. *)
let rec size_bytes = function
  | Unit -> 1
  | Bool _ -> 2
  | Int _ | I64 _ | Float _ -> 9
  | Str s | Blob s -> 5 + String.length s
  | List vs -> 5 + List.fold_left (fun acc v -> acc + size_bytes v) 0 vs
  | Record fs ->
      5
      + List.fold_left
          (fun acc (n, v) -> acc + 4 + String.length n + size_bytes v)
          0 fs
