(* Tags. Kept stable: OPRs written by one run of the simulator are read
   back by tests; a tag renumbering would be a format break. *)
let tag_unit = '\x00'
let tag_bool = '\x01'
let tag_int = '\x02'
let tag_i64 = '\x03'
let tag_float = '\x04'
let tag_str = '\x05'
let tag_blob = '\x06'
let tag_list = '\x07'
let tag_record = '\x08'

let put_i64 buf i =
  for k = 0 to 7 do
    let shift = 8 * (7 - k) in
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical i shift) 0xFFL)))
  done

let put_len buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF))

let rec encode_into buf (v : Value.t) =
  match v with
  | Unit -> Buffer.add_char buf tag_unit
  | Bool b ->
      Buffer.add_char buf tag_bool;
      Buffer.add_char buf (if b then '\x01' else '\x00')
  | Int i ->
      Buffer.add_char buf tag_int;
      put_i64 buf (Int64.of_int i)
  | I64 i ->
      Buffer.add_char buf tag_i64;
      put_i64 buf i
  | Float f ->
      Buffer.add_char buf tag_float;
      put_i64 buf (Int64.bits_of_float f)
  | Str s ->
      Buffer.add_char buf tag_str;
      put_len buf (String.length s);
      Buffer.add_string buf s
  | Blob s ->
      Buffer.add_char buf tag_blob;
      put_len buf (String.length s);
      Buffer.add_string buf s
  | List vs ->
      Buffer.add_char buf tag_list;
      put_len buf (List.length vs);
      List.iter (encode_into buf) vs
  | Record fs ->
      Buffer.add_char buf tag_record;
      put_len buf (List.length fs);
      List.iter
        (fun (n, v) ->
          put_len buf (String.length n);
          Buffer.add_string buf n;
          encode_into buf v)
        fs

let encode v =
  let buf = Buffer.create (Value.size_bytes v) in
  encode_into buf v;
  Buffer.contents buf

let encoded_size v = Value.size_bytes v

exception Malformed of string

(* Deep enough for any legitimate payload (OPRs nest a handful of
   levels), shallow enough that a crafted megabyte of nested list
   headers cannot blow the stack. *)
let max_depth = 256

type cursor = { s : string; mutable pos : int }

let need cur n what =
  if cur.pos + n > String.length cur.s then
    raise (Malformed (Printf.sprintf "truncated %s at offset %d" what cur.pos))

let read_byte cur what =
  need cur 1 what;
  let c = cur.s.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let read_i64 cur what =
  need cur 8 what;
  let r = ref 0L in
  for _ = 1 to 8 do
    r := Int64.logor (Int64.shift_left !r 8) (Int64.of_int (Char.code cur.s.[cur.pos]));
    cur.pos <- cur.pos + 1
  done;
  !r

let read_len cur what =
  need cur 4 what;
  let b i = Char.code cur.s.[cur.pos + i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  cur.pos <- cur.pos + 4;
  if n < 0 then raise (Malformed (Printf.sprintf "negative length in %s" what));
  n

let read_string cur what =
  let n = read_len cur what in
  need cur n what;
  let s = String.sub cur.s cur.pos n in
  cur.pos <- cur.pos + n;
  s

let rec decode_value ?(depth = 0) cur : Value.t =
  if depth > max_depth then raise (Malformed "nesting too deep");
  let tag = read_byte cur "tag" in
  if tag = tag_unit then Unit
  else if tag = tag_bool then
    match read_byte cur "bool" with
    | '\x00' -> Bool false
    | '\x01' -> Bool true
    | c -> raise (Malformed (Printf.sprintf "bad bool byte %d" (Char.code c)))
  else if tag = tag_int then Int (Int64.to_int (read_i64 cur "int"))
  else if tag = tag_i64 then I64 (read_i64 cur "i64")
  else if tag = tag_float then Float (Int64.float_of_bits (read_i64 cur "float"))
  else if tag = tag_str then Str (read_string cur "str")
  else if tag = tag_blob then Blob (read_string cur "blob")
  else if tag = tag_list then begin
    let n = read_len cur "list" in
    if n > String.length cur.s - cur.pos then
      raise (Malformed "list length exceeds buffer");
    List (List.init n (fun _ -> decode_value ~depth:(depth + 1) cur))
  end
  else if tag = tag_record then begin
    let n = read_len cur "record" in
    if n > String.length cur.s - cur.pos then
      raise (Malformed "record length exceeds buffer");
    Record
      (List.init n (fun _ ->
           let name = read_string cur "field name" in
           let v = decode_value ~depth:(depth + 1) cur in
           (name, v)))
  end
  else raise (Malformed (Printf.sprintf "unknown tag %d" (Char.code tag)))

let decode s =
  let cur = { s; pos = 0 } in
  match decode_value cur with
  | v ->
      if cur.pos <> String.length s then
        Error (Printf.sprintf "trailing bytes at offset %d" cur.pos)
      else Ok v
  | exception Malformed msg -> Error msg
