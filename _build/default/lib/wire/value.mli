(** The Legion data model: a self-describing value type.

    The paper assumes all inter-object traffic is describable in an IDL
    (CORBA IDL or MPL). [Value.t] is the runtime representation of that
    data model: every method argument, return value, Object Persistent
    Representation, and saved object state is a [Value.t], so it can be
    marshalled across the simulated network and onto simulated disks with
    one codec (see {!Codec}). *)

type t =
  | Unit
  | Bool of bool
  | Int of int  (** OCaml native int; encoded as 64-bit. *)
  | I64 of int64
  | Float of float
  | Str of string
  | Blob of string  (** Uninterpreted bytes (e.g. executables in OPRs). *)
  | List of t list
  | Record of (string * t) list
      (** Ordered field list; field names must be distinct. *)

type error = [ `Wrong_type of string | `Missing_field of string ]

val pp_error : Format.formatter -> error -> unit

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Constructors} *)

val of_int : int -> t
val of_string : string -> t
val of_bool : bool -> t
val of_float : float -> t
val of_list : ('a -> t) -> 'a list -> t
val of_option : ('a -> t) -> 'a option -> t
(** [None] encodes as [List []], [Some x] as [List [f x]]. *)

val record : (string * t) list -> t
(** @raise Invalid_argument on duplicate field names. *)

(** {1 Accessors}

    All return [Error (`Wrong_type _)] when the value has a different
    constructor than requested. *)

val to_unit : t -> (unit, error) result
val to_bool : t -> (bool, error) result
val to_int : t -> (int, error) result
val to_i64 : t -> (int64, error) result
val to_float : t -> (float, error) result
val to_str : t -> (string, error) result
val to_blob : t -> (string, error) result
val to_list : (t -> ('a, error) result) -> t -> ('a list, error) result
val to_option : (t -> ('a, error) result) -> t -> ('a option, error) result

val field : t -> string -> (t, error) result
(** Look a field up in a [Record]. *)

val field_opt : t -> string -> t option

(** {1 Structure} *)

val depth : t -> int
(** 1 for scalars; nesting depth otherwise. *)

val size_bytes : t -> int
(** Encoded size in bytes under {!Codec}; used for message-size
    accounting in the network model without actually encoding. *)
