lib/wire/codec.mli: Value
