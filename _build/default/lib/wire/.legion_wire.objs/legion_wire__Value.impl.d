lib/wire/value.ml: Bool Float Format Int64 List Stdlib String
