module Loid = Legion_naming.Loid

type decision = Allow | Deny of string

type t =
  | Allow_all
  | Deny_all of string
  | Allow_calling of Loid.Set.t
  | Allow_responsible of Loid.Set.t
  | Deny_methods of string list * t
  | All_of of t list
  | Custom of string * (meth:string -> env:Env.t -> decision)

let rec check t ~meth ~env =
  match t with
  | Allow_all -> Allow
  | Deny_all reason -> Deny reason
  | Allow_calling set ->
      if Loid.Set.mem env.Env.calling set then Allow
      else Deny (Format.asprintf "calling agent %a not trusted" Loid.pp env.Env.calling)
  | Allow_responsible set ->
      if Loid.Set.mem env.Env.responsible set then Allow
      else
        Deny
          (Format.asprintf "responsible agent %a not trusted" Loid.pp
             env.Env.responsible)
  | Deny_methods (meths, rest) ->
      if List.mem meth meths then Deny (Printf.sprintf "method %s refused" meth)
      else check rest ~meth ~env
  | All_of policies ->
      let rec loop = function
        | [] -> Allow
        | p :: rest -> (
            match check p ~meth ~env with Allow -> loop rest | Deny _ as d -> d)
      in
      loop policies
  | Custom (_, f) -> f ~meth ~env

let allow_loids loids = Allow_calling (Loid.Set.of_list loids)

let rec pp ppf = function
  | Allow_all -> Format.fprintf ppf "allow-all"
  | Deny_all r -> Format.fprintf ppf "deny-all(%s)" r
  | Allow_calling set -> Format.fprintf ppf "allow-calling(%d)" (Loid.Set.cardinal set)
  | Allow_responsible set ->
      Format.fprintf ppf "allow-responsible(%d)" (Loid.Set.cardinal set)
  | Deny_methods (ms, rest) ->
      Format.fprintf ppf "deny-methods(%s);%a" (String.concat "," ms) pp rest
  | All_of ps ->
      Format.fprintf ppf "all-of[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") pp)
        ps
  | Custom (name, _) -> Format.fprintf ppf "custom(%s)" name

module Value = Legion_wire.Value

let custom_registry : (string, meth:string -> env:Env.t -> decision) Hashtbl.t =
  Hashtbl.create 16

let register_custom name f = Hashtbl.replace custom_registry name f
let find_custom name = Hashtbl.find_opt custom_registry name

let loid_set_to_value set =
  Value.List (List.map Loid.to_value (Loid.Set.elements set))

let loid_set_of_value v =
  match v with
  | Value.List vs ->
      let rec loop acc = function
        | [] -> Ok (Loid.Set.of_list acc)
        | x :: rest -> (
            match Loid.of_value x with
            | Ok l -> loop (l :: acc) rest
            | Error e -> Error e)
      in
      loop [] vs
  | _ -> Error "policy: loid set not a list"

let rec to_value = function
  | Allow_all -> Value.Record [ ("p", Value.Str "allow") ]
  | Deny_all r -> Value.Record [ ("p", Value.Str "deny"); ("r", Value.Str r) ]
  | Allow_calling set ->
      Value.Record [ ("p", Value.Str "calling"); ("s", loid_set_to_value set) ]
  | Allow_responsible set ->
      Value.Record [ ("p", Value.Str "responsible"); ("s", loid_set_to_value set) ]
  | Deny_methods (ms, rest) ->
      Value.Record
        [
          ("p", Value.Str "deny_methods");
          ("m", Value.List (List.map (fun m -> Value.Str m) ms));
          ("k", to_value rest);
        ]
  | All_of ps ->
      Value.Record [ ("p", Value.Str "all_of"); ("l", Value.List (List.map to_value ps)) ]
  | Custom (name, _) -> Value.Record [ ("p", Value.Str "custom"); ("n", Value.Str name) ]

let rec of_value v =
  let ( let* ) r f = Result.bind r f in
  let err e = Format.asprintf "policy: %a" Value.pp_error e in
  let* kind = Result.map_error err (Result.bind (Value.field v "p") Value.to_str) in
  match kind with
  | "allow" -> Ok Allow_all
  | "deny" ->
      let* r = Result.map_error err (Result.bind (Value.field v "r") Value.to_str) in
      Ok (Deny_all r)
  | "calling" ->
      let* sv = Result.map_error err (Value.field v "s") in
      let* set = loid_set_of_value sv in
      Ok (Allow_calling set)
  | "responsible" ->
      let* sv = Result.map_error err (Value.field v "s") in
      let* set = loid_set_of_value sv in
      Ok (Allow_responsible set)
  | "deny_methods" ->
      let* ms =
        Result.map_error err
          (Result.bind (Value.field v "m") (Value.to_list Value.to_str))
      in
      let* kv = Result.map_error err (Value.field v "k") in
      let* rest = of_value kv in
      Ok (Deny_methods (ms, rest))
  | "all_of" ->
      let* lv = Result.map_error err (Value.field v "l") in
      let* ps =
        match lv with
        | Value.List vs ->
            let rec loop acc = function
              | [] -> Ok (List.rev acc)
              | x :: rest ->
                  let* p = of_value x in
                  loop (p :: acc) rest
            in
            loop [] vs
        | _ -> Error "policy: all_of not a list"
      in
      Ok (All_of ps)
  | "custom" ->
      let* name = Result.map_error err (Result.bind (Value.field v "n") Value.to_str) in
      (match find_custom name with
      | Some f -> Ok (Custom (name, f))
      | None -> Ok (Deny_all (Printf.sprintf "unknown custom policy %s" name)))
  | other -> Error (Printf.sprintf "policy: unknown kind %S" other)
