(** Call environments (paper §2.4).

    Every method invocation is performed in an environment consisting of
    a triple of object names: the operative {e Responsible Agent} (the
    principal on whose behalf the call chain runs), the {e Security
    Agent} (the object that defines policy for the chain), and the
    {e Calling Agent} (the immediate caller). *)

type t = {
  responsible : Legion_naming.Loid.t;
  security : Legion_naming.Loid.t;
  calling : Legion_naming.Loid.t;
}

val make : responsible:Legion_naming.Loid.t -> security:Legion_naming.Loid.t -> calling:Legion_naming.Loid.t -> t

val of_self : Legion_naming.Loid.t -> t
(** A self-sovereign environment: all three roles are the given object.
    Used by bootstrap objects and simple clients. *)

val delegate : t -> calling:Legion_naming.Loid.t -> t
(** Keep RA and SA, replace the Calling Agent — what an object does when
    it makes calls on behalf of an incoming request. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_value : t -> Legion_wire.Value.t
val of_value : Legion_wire.Value.t -> (t, string) result
