(** Security policies behind [MayI()] (paper §2.4).

    The paper's model is "security is built into the object by its
    implementor": every object answers [MayI] itself, and Legion merely
    guarantees the question is asked. A [Policy.t] is the reusable
    decision procedure an implementor attaches to an object; the default
    is [Allow_all] ("these functions may default to empty for the case of
    no security"). *)

module Loid := Legion_naming.Loid

type decision = Allow | Deny of string

type t =
  | Allow_all
  | Deny_all of string  (** Refuse everything, with a reason. *)
  | Allow_calling of Loid.Set.t
      (** Admit only listed Calling Agents. *)
  | Allow_responsible of Loid.Set.t
      (** Admit only call chains run on behalf of listed Responsible
          Agents — the DOE-style trust boundary of §2.1.3. *)
  | Deny_methods of string list * t
      (** Refuse the listed methods outright, defer the rest. *)
  | All_of of t list  (** Conjunction: every policy must allow. *)
  | Custom of string * (meth:string -> env:Env.t -> decision)
      (** Named user-defined policy. *)

val check : t -> meth:string -> env:Env.t -> decision

val allow_loids : Loid.t list -> t
(** Convenience for [Allow_calling] of a list. *)

val pp : Format.formatter -> t -> unit

(** {1 Persistence}

    Policies travel inside saved object state. [Custom] policies are
    serialized by name and looked up in the custom registry on decode;
    registering is idempotent (last registration wins). An unknown name
    decodes to [Deny_all] — failing closed. *)

val register_custom : string -> (meth:string -> env:Env.t -> decision) -> unit
val find_custom : string -> (meth:string -> env:Env.t -> decision) option

val to_value : t -> Legion_wire.Value.t
val of_value : Legion_wire.Value.t -> (t, string) result
