lib/security/env.mli: Format Legion_naming Legion_wire
