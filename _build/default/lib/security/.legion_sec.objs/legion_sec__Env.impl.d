lib/security/env.ml: Format Legion_naming Legion_wire Result
