lib/security/policy.mli: Env Format Legion_naming Legion_wire
