lib/security/policy.ml: Env Format Hashtbl Legion_naming Legion_wire List Printf Result String
