module Value = Legion_wire.Value

type t = { responsible : Legion_naming.Loid.t; security : Legion_naming.Loid.t; calling : Legion_naming.Loid.t }

let make ~responsible ~security ~calling = { responsible; security; calling }
let of_self loid = { responsible = loid; security = loid; calling = loid }
let delegate t ~calling = { t with calling }

let equal a b =
  Legion_naming.Loid.equal a.responsible b.responsible
  && Legion_naming.Loid.equal a.security b.security
  && Legion_naming.Loid.equal a.calling b.calling

let pp ppf t =
  Format.fprintf ppf "{ra=%a;sa=%a;ca=%a}" Legion_naming.Loid.pp t.responsible Legion_naming.Loid.pp
    t.security Legion_naming.Loid.pp t.calling

let to_value t =
  Value.Record
    [
      ("ra", Legion_naming.Loid.to_value t.responsible);
      ("sa", Legion_naming.Loid.to_value t.security);
      ("ca", Legion_naming.Loid.to_value t.calling);
    ]

let of_value v =
  let ( let* ) r f = Result.bind r f in
  let err e = Format.asprintf "env: %a" Value.pp_error e in
  let* ra = Result.bind (Result.map_error err (Value.field v "ra")) Legion_naming.Loid.of_value in
  let* sa = Result.bind (Result.map_error err (Value.field v "sa")) Legion_naming.Loid.of_value in
  let* ca = Result.bind (Result.map_error err (Value.field v "ca")) Legion_naming.Loid.of_value in
  Ok { responsible = ra; security = sa; calling = ca }
