(** Contexts: string names for LOIDs (paper §4.1).

    "A user will write a Legion application program in her favorite
    language, and will typically name Legion objects with string names.
    The program is compiled within a particular {e context} … the
    compiler uses the context to map string names to LOIDs." We provide
    the same mapping as a runtime service: a context object holds
    [name → LOID] entries; nesting contexts (an entry naming another
    context object) yields hierarchical paths, resolved client-side with
    {!resolve_path}.

    Methods: [Lookup(name: str): loid]; [Bind(name: str, obj: loid):
    unit]; [Unbind(name: str): unit]; [ListEntries(): list<record>]. *)

module Impl := Legion_core.Impl
module Loid := Legion_naming.Loid
module Runtime := Legion_rt.Runtime

val unit_name : string
(** ["legion.context"]. *)

val factory : Impl.factory
val register : unit -> unit

val resolve_path :
  Runtime.ctx ->
  root:Loid.t ->
  string ->
  ((Loid.t, Legion_rt.Err.t) result -> unit) ->
  unit
(** Resolve a ["/"]-separated path by chained [Lookup] calls starting at
    the [root] context object. Empty segments are skipped, so
    ["/a//b"] ≡ ["a/b"]. *)

val ensure_path :
  Runtime.ctx ->
  root:Loid.t ->
  create_context:(((Loid.t, Legion_rt.Err.t) result -> unit) -> unit) ->
  string ->
  ((Loid.t, Legion_rt.Err.t) result -> unit) ->
  unit
(** [mkdir -p]: walk the path from [root], creating (via
    [create_context], typically a [Create] on a context class) and
    binding a fresh context object for every missing segment; the
    continuation receives the final segment's context. Existing
    segments are reused whatever object they name. *)
