module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Impl = Legion_core.Impl
module C = Legion_core.Convert

let unit_name = "legion.context"

type state = { mutable entries : (string * Loid.t) list }

let factory (_ctx : Runtime.ctx) : Impl.part =
  let st = { entries = [] } in
  let lookup _ctx args _env k =
    match args with
    | [ Value.Str name ] -> (
        match List.assoc_opt name st.entries with
        | Some loid -> k (Ok (Loid.to_value loid))
        | None -> k (Error (Err.Not_bound (Printf.sprintf "no entry %S" name))))
    | _ -> Impl.bad_args k "Lookup expects one name"
  in
  let bind _ctx args _env k =
    match args with
    | [ Value.Str name; loid_v ] -> (
        match C.loid_arg loid_v with
        | Error msg -> Impl.bad_args k msg
        | Ok loid ->
            st.entries <- (name, loid) :: List.remove_assoc name st.entries;
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "Bind expects (name, loid)"
  in
  let unbind _ctx args _env k =
    match args with
    | [ Value.Str name ] ->
        st.entries <- List.remove_assoc name st.entries;
        k Impl.ok_unit
    | _ -> Impl.bad_args k "Unbind expects one name"
  in
  let list_entries _ctx args _env k =
    match args with
    | [] ->
        k
          (Ok
             (Value.List
                (List.map
                   (fun (n, l) ->
                     Value.Record [ ("name", Value.Str n); ("loid", Loid.to_value l) ])
                   st.entries)))
    | _ -> Impl.bad_args k "ListEntries takes no arguments"
  in
  let save () =
    Value.List
      (List.map
         (fun (n, l) -> Value.Record [ ("n", Value.Str n); ("l", Loid.to_value l) ])
         st.entries)
  in
  let restore v =
    let ( let* ) r f = Result.bind r f in
    match v with
    | Value.List es ->
        let rec loop acc = function
          | [] ->
              st.entries <- List.rev acc;
              Ok ()
          | e :: rest ->
              let* n = C.str_field e "n" in
              let* l = C.loid_field e "l" in
              loop ((n, l) :: acc) rest
        in
        loop [] es
    | _ -> Error "context state: not a list"
  in
  Impl.part
    ~methods:
      [
        ("Lookup", lookup);
        ("Bind", bind);
        ("Unbind", unbind);
        ("ListEntries", list_entries);
      ]
    ~save ~restore unit_name

let register () = Impl.register unit_name factory

let ensure_path ctx ~root ~create_context path k =
  let segments = List.filter (fun s -> s <> "") (String.split_on_char '/' path) in
  let rec walk current = function
    | [] -> k (Ok current)
    | seg :: rest ->
        Runtime.invoke ctx ~dst:current ~meth:"Lookup" ~args:[ Value.Str seg ]
          (fun r ->
            match r with
            | Ok v -> (
                match Loid.of_value v with
                | Ok next -> walk next rest
                | Error msg -> k (Error (Err.Internal msg)))
            | Error (Err.Not_bound _) ->
                create_context (fun created ->
                    match created with
                    | Error e -> k (Error e)
                    | Ok fresh ->
                        Runtime.invoke ctx ~dst:current ~meth:"Bind"
                          ~args:[ Value.Str seg; Loid.to_value fresh ]
                          (fun r ->
                            match r with
                            | Error e -> k (Error e)
                            | Ok _ -> walk fresh rest))
            | Error e -> k (Error e))
  in
  walk root segments

let resolve_path ctx ~root path k =
  let segments = List.filter (fun s -> s <> "") (String.split_on_char '/' path) in
  let rec walk current = function
    | [] -> k (Ok current)
    | seg :: rest ->
        Runtime.invoke ctx ~dst:current ~meth:"Lookup" ~args:[ Value.Str seg ]
          (fun r ->
            match r with
            | Error e -> k (Error e)
            | Ok v -> (
                match Loid.of_value v with
                | Ok next -> walk next rest
                | Error msg -> k (Error (Err.Internal msg))))
  in
  walk root segments
