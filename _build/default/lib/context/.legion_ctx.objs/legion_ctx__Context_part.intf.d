lib/context/context_part.mli: Legion_core Legion_naming Legion_rt
