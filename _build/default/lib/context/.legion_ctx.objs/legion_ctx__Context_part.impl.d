lib/context/context_part.ml: Legion_core Legion_naming Legion_rt Legion_wire List Printf Result String
