(** Synchronous convenience layer over the asynchronous runtime.

    Method invocation in Legion is non-blocking (§2); tests, examples
    and benchmarks, however, read much better in a blocking style. [sync]
    starts an asynchronous operation and drives the simulation until its
    continuation fires, returning the result — the moral equivalent of
    a user program blocking on a future. *)

module Loid := Legion_naming.Loid
module Binding := Legion_naming.Binding
module Value := Legion_wire.Value
module Runtime := Legion_rt.Runtime

exception Call_failed of string
(** Raised by the [_exn] helpers, with a rendered {!Legion_rt.Err.t}. *)

val sync : System.t -> (('a -> unit) -> unit) -> 'a
(** [sync t start] runs [start k], then the simulation, until [k] has
    been called. @raise Failure if the simulation quiesces without the
    continuation firing (a protocol bug). *)

val call :
  System.t ->
  Runtime.ctx ->
  dst:Loid.t ->
  meth:string ->
  args:Value.t list ->
  Runtime.reply
(** One blocking method invocation through the full communication
    layer (cache, Binding Agent, rebind-retry). *)

val call_exn :
  System.t ->
  Runtime.ctx ->
  dst:Loid.t ->
  meth:string ->
  args:Value.t list ->
  Value.t

(** {1 Object and class lifecycle} *)

val create_object :
  System.t ->
  Runtime.ctx ->
  cls:Loid.t ->
  ?init:(string * Value.t) list ->
  ?eager:bool ->
  ?magistrate:Loid.t ->
  ?host:Loid.t ->
  ?sched:Loid.t ->
  ?candidates:Loid.t list ->
  ?public_key:string ->
  unit ->
  (Loid.t * Binding.t option, Legion_rt.Err.t) result
(** Invoke [Create] on a class. [init] maps implementation-unit names
    to initial states. [eager] activates immediately (default false —
    the object starts Inert and activates on first reference).
    [candidates] seeds the Fig. 16 Candidate Magistrate List: fallback
    Magistrates the class may consult when the current ones fail.
    [public_key] fills the LOID's §3.2 key field; the key is part of the
    object's identity, so a reference quoting a wrong key resolves
    nowhere. *)

val create_object_exn :
  System.t ->
  Runtime.ctx ->
  cls:Loid.t ->
  ?init:(string * Value.t) list ->
  ?eager:bool ->
  ?magistrate:Loid.t ->
  ?host:Loid.t ->
  ?sched:Loid.t ->
  ?candidates:Loid.t list ->
  ?public_key:string ->
  unit ->
  Loid.t

val derive_class :
  System.t ->
  Runtime.ctx ->
  parent:Loid.t ->
  name:string ->
  ?units:string list ->
  ?idl:string ->
  ?mpl:string ->
  ?abstract:bool ->
  ?private_:bool ->
  ?fixed:bool ->
  ?typed:bool ->
  ?kind:string ->
  ?magistrate:Loid.t ->
  unit ->
  (Loid.t, Legion_rt.Err.t) result
(** Invoke [Derive] on a class; the new class object is activated
    eagerly. The interface source is [idl] (CORBA-flavoured) or [mpl]
    (Mentat-flavoured) — the paper's two IDLs — but not both. [typed]
    makes instances enforce the class interface at dispatch. *)

val derive_class_exn :
  System.t ->
  Runtime.ctx ->
  parent:Loid.t ->
  name:string ->
  ?units:string list ->
  ?idl:string ->
  ?mpl:string ->
  ?abstract:bool ->
  ?private_:bool ->
  ?fixed:bool ->
  ?typed:bool ->
  ?kind:string ->
  ?magistrate:Loid.t ->
  unit ->
  Loid.t

val delete_object :
  System.t -> Runtime.ctx -> cls:Loid.t -> loid:Loid.t ->
  (unit, Legion_rt.Err.t) result
(** Invoke [Delete] on the owning class: active and inert copies are
    removed everywhere; later references fail definitively (§3.8). *)

val inherit_from :
  System.t -> Runtime.ctx -> cls:Loid.t -> base:Loid.t ->
  (unit, Legion_rt.Err.t) result
(** Invoke [InheritFrom] — run-time multiple inheritance (§2.1.1). *)

val get_interface :
  System.t -> Runtime.ctx -> cls:Loid.t ->
  (Legion_idl.Interface.t, Legion_rt.Err.t) result

val get_binding :
  System.t -> Runtime.ctx -> via:Loid.t -> target:Loid.t ->
  (Binding.t, Legion_rt.Err.t) result
(** Ask [via] (a class or a Binding Agent) to bind [target]. *)
