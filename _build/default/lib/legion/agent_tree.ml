module Loid = Legion_naming.Loid
module Runtime = Legion_rt.Runtime
module Impl = Legion_core.Impl
module Opr = Legion_core.Opr
module Well_known = Legion_core.Well_known
module Agent_part = Legion_binding.Agent_part

type t = {
  roots : Runtime.proc list;
  levels : Runtime.proc list list;
  leaves : Runtime.proc list;
}

let spawn_agent sys ~parent ~host =
  let loid =
    System.fresh_instance_loid sys ~of_class:Well_known.legion_binding_agent
  in
  let state =
    Agent_part.state_value ?parent ~legion_class:(System.legion_class_binding sys)
      ()
  in
  let opr =
    Opr.make
      ~states:[ (Agent_part.unit_name, state) ]
      ~kind:Well_known.kind_binding_agent
      ~units:[ Agent_part.unit_name; Well_known.unit_object ]
      ()
  in
  match Impl.activate (System.rt sys) ~host ~loid opr with
  | Ok proc -> proc
  | Error msg -> failwith ("Tree.build: " ^ msg)

let build sys ~hosts ~fanout ~levels ~n_leaves =
  if fanout <= 0 then invalid_arg "Tree.build: fanout must be positive";
  if levels < 0 then invalid_arg "Tree.build: levels must be non-negative";
  if n_leaves <= 0 then invalid_arg "Tree.build: n_leaves must be positive";
  if hosts = [] then invalid_arg "Tree.build: no hosts";
  let host_arr = Array.of_list hosts in
  let host_cursor = ref 0 in
  let next_host () =
    let h = host_arr.(!host_cursor mod Array.length host_arr) in
    incr host_cursor;
    h
  in
  if levels = 0 then begin
    let roots =
      List.init n_leaves (fun _ -> spawn_agent sys ~parent:None ~host:(next_host ()))
    in
    { roots; levels = [ roots ]; leaves = roots }
  end
  else begin
    (* Width of each layer, root (0) downwards: the leaf layer has
       n_leaves; each layer above is ceil(width / fanout). *)
    let widths = Array.make (levels + 1) 0 in
    widths.(levels) <- n_leaves;
    for l = levels - 1 downto 0 do
      widths.(l) <- (widths.(l + 1) + fanout - 1) / fanout
    done;
    let layers = Array.make (levels + 1) [] in
    layers.(0) <-
      List.init widths.(0) (fun _ -> spawn_agent sys ~parent:None ~host:(next_host ()));
    for l = 1 to levels do
      let parents = Array.of_list layers.(l - 1) in
      layers.(l) <-
        List.init widths.(l) (fun i ->
            let parent = parents.(i / fanout) in
            spawn_agent sys
              ~parent:(Some (Runtime.address_of parent))
              ~host:(next_host ()))
    done;
    let levels_list = Array.to_list layers in
    { roots = layers.(0); levels = levels_list; leaves = layers.(levels) }
  end
