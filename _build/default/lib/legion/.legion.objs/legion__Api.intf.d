lib/legion/api.mli: Legion_idl Legion_naming Legion_rt Legion_wire System
