lib/legion/api.ml: Legion_core Legion_idl Legion_naming Legion_rt Legion_sim Legion_wire Printf Result System
