lib/legion/agent_tree.ml: Array Legion_binding Legion_core Legion_naming Legion_rt List System
