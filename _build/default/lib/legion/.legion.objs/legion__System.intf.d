lib/legion/system.mli: Legion_naming Legion_net Legion_obs Legion_rt Legion_sim Legion_store Legion_util
