lib/legion/agent_tree.mli: Legion_net Legion_rt System
