(** Builders for Binding-Agent combining trees (§5.2.2).

    "Binding Agents could be organized to implement a software combining
    tree": leaves forward class lookups to parents, parents to
    grandparents, and only the roots consult LegionClass. This module
    spawns the extra agents over a booted system and wires the parent
    links; E3 measures the resulting LegionClass load.

    Nodes are spawned round-robin over [hosts] and registered with the
    LegionBindingAgent class so they resolve like any other object. *)

module Runtime := Legion_rt.Runtime

type t = {
  roots : Runtime.proc list;
  levels : Runtime.proc list list;
      (** Index 0 = the roots; the last entry = the leaves. *)
  leaves : Runtime.proc list;
}

val build :
  System.t ->
  hosts:Legion_net.Network.host_id list ->
  fanout:int ->
  levels:int ->
  n_leaves:int ->
  t
(** Build a [fanout]-ary tree [levels] deep whose leaf layer has
    [n_leaves] agents (the root layer is sized so every leaf has an
    ancestor chain). [levels = 0] yields [n_leaves] independent root
    agents. @raise Invalid_argument on non-positive arguments;
    @raise Failure if an agent cannot be spawned. *)
