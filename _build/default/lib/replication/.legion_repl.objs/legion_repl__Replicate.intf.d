lib/replication/replicate.mli: Legion_core Legion_naming Legion_net Legion_rt
