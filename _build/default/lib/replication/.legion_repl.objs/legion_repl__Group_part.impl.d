lib/replication/group_part.ml: Legion_core Legion_naming Legion_rt Legion_sec Legion_wire List Option Printf Result
