lib/replication/group_part.mli: Legion_core
