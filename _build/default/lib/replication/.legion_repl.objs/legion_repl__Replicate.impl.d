lib/replication/replicate.ml: Legion_core Legion_naming Legion_rt Legion_wire List Result
