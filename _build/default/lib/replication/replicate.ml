module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Impl = Legion_core.Impl
module Opr = Legion_core.Opr

let deploy rt ~loid ~opr ~hosts ~semantic =
  if hosts = [] then Error "Replicate.deploy: no hosts"
  else
    let rec spawn_all acc = function
      | [] -> Ok (List.rev acc)
      | host :: rest -> (
          match Impl.activate rt ~host ~loid opr with
          | Ok proc -> spawn_all (proc :: acc) rest
          | Error msg ->
              List.iter (Runtime.kill rt) acc;
              Error msg)
    in
    match spawn_all [] hosts with
    | Error _ as e -> e
    | Ok procs ->
        let elements = List.map Runtime.element_of procs in
        Ok (procs, Address.make ~semantic elements)

let deploy_via_hosts ctx ~loid ~opr ~host_objects ~semantic ?register_with k =
  if host_objects = [] then k (Error (Err.Bad_args "no host objects"))
  else
    let blob = Value.Blob (Opr.to_blob opr) in
    let rec activate_all acc = function
      | [] -> finish (List.rev acc)
      | h :: rest ->
          Runtime.invoke ctx ~dst:h ~meth:"Activate"
            ~args:[ Loid.to_value loid; blob ]
            (fun r ->
              match r with
              | Error e -> k (Error e)
              | Ok reply -> (
                  match
                    Result.bind (Value.field reply "addr") (fun v ->
                        match Address.of_value v with
                        | Ok a -> Ok a
                        | Error m -> Error (`Wrong_type m))
                  with
                  | Ok addr -> activate_all (Address.elements addr @ acc) rest
                  | Error _ -> k (Error (Err.Internal "bad Activate reply"))))
    and finish elements =
      let address = Address.make ~semantic elements in
      match register_with with
      | None -> k (Ok address)
      | Some cls ->
          Runtime.invoke ctx ~dst:cls ~meth:"RegisterInstance"
            ~args:[ Loid.to_value loid; Address.to_value address ]
            (fun r ->
              match r with Error e -> k (Error e) | Ok _ -> k (Ok address))
    in
    activate_all [] host_objects
