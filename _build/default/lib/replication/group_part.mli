(** Application-level object groups ("legion.group").

    The paper's §4.3 closes: "multiple Legion objects, each with its
    own LOID, can work together to perform a single logical function,
    but in this case the management of the 'object group' and the
    semantics of communication with the group is left to the
    application programmer." This unit is that application-level
    manager, built purely on the public object model — a demonstration
    that the core mechanisms suffice.

    A group object holds member LOIDs and forwards invocations:

    - [AddMember(obj: loid): unit], [RemoveMember(obj: loid): unit],
      [ListMembers(): list<loid>], [SetMode(mode: str): unit] with
      modes ["all"], ["quorum"], ["any"];
    - [Invoke(meth: str, args: list<any>): record] — forward to every
      member under the caller's delegated environment and combine:
      [all] succeeds iff every member replied Ok; [quorum] iff a strict
      majority did; [any] iff at least one did. The reply carries
      [{value, ok: int, failed: int}] where [value] is the first
      successful member reply.

    Unlike §4.3 system-level replication (one LOID, many processes),
    members here keep their LOIDs; successful [all]-mode writes keep
    member state convergent as long as members apply deterministic
    updates. *)

module Impl := Legion_core.Impl

val unit_name : string

val factory : Impl.factory
(** Fresh state: no members, mode [all]. *)

val register : unit -> unit
