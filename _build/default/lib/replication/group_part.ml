module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Env = Legion_sec.Env
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Impl = Legion_core.Impl
module C = Legion_core.Convert

let unit_name = "legion.group"

type mode = All | Quorum | Any

let mode_to_string = function All -> "all" | Quorum -> "quorum" | Any -> "any"

let mode_of_string = function
  | "all" -> Ok All
  | "quorum" -> Ok Quorum
  | "any" -> Ok Any
  | s -> Error (Printf.sprintf "unknown group mode %S" s)

type state = { mutable members : Loid.t list; mutable mode : mode }

let factory (ctx : Runtime.ctx) : Impl.part =
  let self = Runtime.proc_loid ctx.Runtime.self in
  let st = { members = []; mode = All } in

  let add_member _ctx args _env k =
    match args with
    | [ v ] -> (
        match C.loid_arg v with
        | Error msg -> Impl.bad_args k msg
        | Ok m ->
            if not (List.exists (Loid.equal m) st.members) then
              st.members <- st.members @ [ m ];
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "AddMember expects one loid"
  in
  let remove_member _ctx args _env k =
    match args with
    | [ v ] -> (
        match C.loid_arg v with
        | Error msg -> Impl.bad_args k msg
        | Ok m ->
            st.members <- List.filter (fun x -> not (Loid.equal x m)) st.members;
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "RemoveMember expects one loid"
  in
  let list_members _ctx args _env k =
    match args with
    | [] -> k (Ok (C.vloids st.members))
    | _ -> Impl.bad_args k "ListMembers takes no arguments"
  in
  let set_mode _ctx args _env k =
    match args with
    | [ Value.Str s ] -> (
        match mode_of_string s with
        | Ok m ->
            st.mode <- m;
            k Impl.ok_unit
        | Error msg -> Impl.bad_args k msg)
    | _ -> Impl.bad_args k "SetMode expects one string"
  in

  (* Fan the call out to all members; combine per the group's mode. *)
  let invoke_members _ctx args env k =
    match args with
    | [ Value.Str meth; Value.List fwd_args ] -> (
        match st.members with
        | [] -> k (Error (Err.Refused "group has no members"))
        | members ->
            let n = List.length members in
            let ok = ref 0 and failed = ref 0 in
            let first_value = ref None in
            let decided = ref false in
            let denv = Env.delegate env ~calling:self in
            (* Reply the moment the outcome is decided: a slow or dead
               member must not hold a quorum hostage. Late replies are
               counted but no longer observable. *)
            let succeed () =
              decided := true;
              k
                (Ok
                   (Value.Record
                      [
                        ("value", Option.value ~default:Value.Unit !first_value);
                        ("ok", Value.Int !ok);
                        ("failed", Value.Int !failed);
                      ]))
            in
            let fail () =
              decided := true;
              k
                (Error
                   (Err.Refused
                      (Printf.sprintf "group %s-mode failed: %d/%d ok"
                         (mode_to_string st.mode) !ok n)))
            in
            let check () =
              if not !decided then
                match st.mode with
                | All -> if !failed > 0 then fail () else if !ok = n then succeed ()
                | Quorum ->
                    if 2 * !ok > n then succeed ()
                    else if 2 * (n - !failed) <= n then fail ()
                | Any -> if !ok >= 1 then succeed () else if !failed = n then fail ()
            in
            List.iter
              (fun m ->
                Runtime.invoke ctx ~dst:m ~meth ~args:fwd_args ~env:denv
                  (fun r ->
                    (match r with
                    | Ok v ->
                        incr ok;
                        if !first_value = None then first_value := Some v
                    | Error _ -> incr failed);
                    check ()))
              members)
    | _ -> Impl.bad_args k "Invoke expects (meth: str, args: list)"
  in

  let save () =
    Value.Record
      [ ("members", C.vloids st.members); ("mode", Value.Str (mode_to_string st.mode)) ]
  in
  let restore v =
    let ( let* ) r f = Result.bind r f in
    let* members = C.loid_list_field v "members" in
    let* mode_s = C.str_field v "mode" in
    let* mode = mode_of_string mode_s in
    st.members <- members;
    st.mode <- mode;
    Ok ()
  in
  Impl.part
    ~methods:
      [
        ("AddMember", add_member);
        ("RemoveMember", remove_member);
        ("ListMembers", list_members);
        ("SetMode", set_mode);
        ("Invoke", invoke_members);
      ]
    ~save ~restore unit_name

let register () = Impl.register unit_name factory
