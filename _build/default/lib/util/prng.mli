(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator draws from an explicit
    [Prng.t] so that experiments are reproducible bit-for-bit from a seed.
    The generator is the splitmix64 sequence of Steele, Lea and Flood,
    which has a 64-bit state, passes BigCrush, and is cheap enough to use
    on every simulated message. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator whose future stream equals
    [t]'s future stream. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. The two
    streams are statistically independent; used to give each simulated
    component its own stream so that adding components does not perturb
    the draws of existing ones. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in [lo, hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is true with probability [p] (clamped to [0,1]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean; used for Poisson
    arrival processes in the workload generators. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a list
(** [sample_without_replacement t k arr] is [k] distinct elements of
    [arr] in random order. @raise Invalid_argument if
    [k < 0 || k > Array.length arr]. *)
