type zipf = { prng : Prng.t; cumulative : float array; pmf : float array }

let zipf prng ~n ~s =
  if n <= 0 then invalid_arg "Sampler.zipf: n must be positive";
  if s < 0.0 then invalid_arg "Sampler.zipf: s must be non-negative";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let pmf = Array.map (fun w -> w /. total) weights in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cumulative.(i) <- !acc)
    pmf;
  { prng; cumulative; pmf }

let zipf_draw z =
  let u = Prng.float z.prng 1.0 in
  (* Binary search for the first cumulative weight >= u. *)
  let rec find lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if z.cumulative.(mid) < u then find (mid + 1) hi else find lo mid
  in
  find 0 (Array.length z.cumulative - 1)

let zipf_pmf z rank =
  if rank < 0 || rank >= Array.length z.pmf then 0.0 else z.pmf.(rank)

type poisson = { pprng : Prng.t; rate : float }

let poisson_process prng ~rate =
  if rate <= 0.0 then invalid_arg "Sampler.poisson_process: rate must be positive";
  { pprng = prng; rate }

let next_arrival p = Prng.exponential p.pprng ~mean:(1.0 /. p.rate)

let arrivals_until p ~horizon =
  let rec loop t acc =
    let t = t +. next_arrival p in
    if t >= horizon then List.rev acc else loop t (t :: acc)
  in
  loop 0.0 []
