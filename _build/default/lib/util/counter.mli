(** Named monotonic counters.

    The scalability experiments of the paper's §5 are statements about the
    number of requests arriving at individual system components. Every
    component in the simulator owns a [Counter.t] registered in a
    [Registry.t]; experiments read the registry after a run.

    Counters are grouped by a [group] string (e.g. ["binding_agent"],
    ["class"], ["magistrate"]) so queries like "the most-loaded binding
    agent" are one call. *)

type t

val value : t -> int
val incr : t -> unit
val add : t -> int -> unit
val name : t -> string
val group : t -> string

module Registry : sig
  type r

  val create : unit -> r

  val make : r -> group:string -> name:string -> t
  (** Create and register a counter. Registering the same (group, name)
      twice returns the existing counter. *)

  val find : r -> group:string -> name:string -> t option
  val all : r -> t list
  val by_group : r -> string -> t list
  val group_total : r -> string -> int
  val group_max : r -> string -> (string * int) option
  (** Counter name and value of the largest counter in a group. *)

  val reset : r -> unit
  (** Zero every counter, keeping registrations. *)

  val pp : Format.formatter -> r -> unit
end
