type t = { group : string; name : string; mutable value : int }

let value t = t.value
let incr t = t.value <- t.value + 1
let add t n = t.value <- t.value + n
let name t = t.name
let group t = t.group

module Registry = struct
  type r = { tbl : (string * string, t) Hashtbl.t; mutable order : t list }

  let create () = { tbl = Hashtbl.create 64; order = [] }

  let make r ~group ~name =
    match Hashtbl.find_opt r.tbl (group, name) with
    | Some c -> c
    | None ->
        let c = { group; name; value = 0 } in
        Hashtbl.add r.tbl (group, name) c;
        r.order <- c :: r.order;
        c

  let find r ~group ~name = Hashtbl.find_opt r.tbl (group, name)
  let all r = List.rev r.order
  let by_group r g = List.filter (fun c -> c.group = g) (all r)
  let group_total r g = List.fold_left (fun acc c -> acc + c.value) 0 (by_group r g)

  let group_max r g =
    List.fold_left
      (fun acc c ->
        match acc with
        | Some (_, v) when v >= c.value -> acc
        | _ -> Some (c.name, c.value))
      None (by_group r g)

  let reset r = List.iter (fun c -> c.value <- 0) (all r)

  let pp ppf r =
    let pp_counter ppf c = Format.fprintf ppf "%s/%s=%d" c.group c.name c.value in
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
      pp_counter ppf (all r)
end
