(** Imperative binary min-heap, the priority queue behind the
    discrete-event engine.

    Elements are ordered by a user-supplied comparison fixed at creation.
    All operations are the standard O(log n) / O(1) bounds. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order; O(n). *)

val drain_sorted : 'a t -> 'a list
(** Remove everything, returned in ascending order; empties the heap. *)
