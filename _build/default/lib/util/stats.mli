(** Summary statistics for experiment measurements.

    A [Stats.t] accumulates samples and reports count, mean, variance,
    extrema and percentiles. Percentile queries sort an internal copy of
    the retained samples; accumulation is O(1) amortised. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample. *)

val add_list : t -> float list -> unit

val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the samples; [0.] when empty. *)

val variance : t -> float
(** Population variance; [0.] when fewer than two samples. *)

val stddev : t -> float
val min : t -> float
(** @raise Invalid_argument when empty. *)

val max : t -> float
(** @raise Invalid_argument when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0,100], by linear interpolation between
    closest ranks. @raise Invalid_argument when empty or [p] out of
    range. *)

val median : t -> float

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator holding the samples of both. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** Render as "n=… mean=… p50=… p99=… max=…". *)

(** {1 Histograms} *)

module Histogram : sig
  type h

  val create : buckets:float array -> h
  (** [create ~buckets] uses [buckets] as ascending upper bounds; an
      implicit overflow bucket catches the rest.
      @raise Invalid_argument if bounds are not strictly ascending or
      empty. *)

  val add : h -> float -> unit
  val counts : h -> (float option * int) list
  (** Bucket upper bounds paired with counts; [None] is the overflow
      bucket. *)

  val total : h -> int
  val pp : Format.formatter -> h -> unit
end
