(** Summary statistics for experiment measurements.

    A [Stats.t] accumulates samples and reports count, mean, variance,
    extrema and percentiles. Percentile queries sort an internal copy of
    the retained samples; accumulation is O(1) amortised. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample. *)

val add_list : t -> float list -> unit

val count : t -> int

val is_empty : t -> bool
(** [true] iff no samples have been recorded. Check before calling the
    partial accessors {!min}, {!max}, {!percentile} and {!median}, which
    all raise on an empty accumulator. *)

val total : t -> float
val mean : t -> float
(** Mean of the samples; [0.] when empty. *)

val variance : t -> float
(** Population variance; [0.] when fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** Smallest sample seen.
    @raise Invalid_argument ["Stats.min: empty"] when no sample has been
    recorded — there is no neutral element to return; guard with
    {!is_empty}. *)

val max : t -> float
(** Largest sample seen.
    @raise Invalid_argument ["Stats.max: empty"] when no sample has been
    recorded; guard with {!is_empty}. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0,100], by linear interpolation between
    closest ranks. @raise Invalid_argument when empty or [p] out of
    range. *)

val median : t -> float

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator holding the samples of both. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** Render as "n=… mean=… p50=… p99=… max=…". *)

(** {1 Histograms} *)

module Histogram : sig
  type h

  val create : buckets:float array -> h
  (** [create ~buckets] uses [buckets] as ascending upper bounds; an
      implicit overflow bucket catches the rest.
      @raise Invalid_argument if bounds are not strictly ascending or
      empty. *)

  val linear : lo:float -> width:float -> count:int -> h
  (** [count] equal-width buckets: upper bounds
      [lo + width], [lo + 2*width], …, plus the implicit overflow bucket.
      @raise Invalid_argument when [count <= 0] or [width <= 0]. *)

  val bounds : h -> float array
  (** A copy of the upper bounds (excludes the overflow bucket). *)

  val add : h -> float -> unit
  val counts : h -> (float option * int) list
  (** Bucket upper bounds paired with counts; [None] is the overflow
      bucket. *)

  val total : h -> int

  val merge : h -> h -> h
  (** Cell-wise sum into a fresh histogram. Merging is associative and
      commutative, so snapshots from independent components can be
      combined in any order.
      @raise Invalid_argument when the two histograms' bounds differ. *)

  val percentile : h -> float -> float
  (** Nearest-rank percentile resolved to bucket granularity: the upper
      bound of the bucket holding the k-th smallest sample,
      k = ceil(p/100 * total) clamped to [1, total]; [infinity] when that
      sample overflowed the last bound. Agrees with {!Stats.percentile}
      over the same samples to within one bucket width at integral ranks.
      @raise Invalid_argument when empty or [p] outside [0,100]. *)

  val pp : Format.formatter -> h -> unit
end
