lib/util/heap.mli:
