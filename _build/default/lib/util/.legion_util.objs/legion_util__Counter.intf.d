lib/util/counter.mli: Format
