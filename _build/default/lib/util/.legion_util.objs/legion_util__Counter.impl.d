lib/util/counter.ml: Format Hashtbl List
