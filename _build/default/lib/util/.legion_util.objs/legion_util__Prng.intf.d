lib/util/prng.mli:
