lib/util/sampler.ml: Array Float List Prng
