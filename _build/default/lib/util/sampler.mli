(** Workload distributions for experiments.

    The evaluation harness drives the system with synthetic load:
    Zipf-skewed object popularity (some objects are hot, most are cold —
    the standard model for naming-service traffic) and Poisson arrival
    processes. Both draw from an explicit {!Prng.t} for
    reproducibility. *)

type zipf

val zipf : Prng.t -> n:int -> s:float -> zipf
(** A Zipf(s) sampler over ranks [0 .. n-1]; rank 0 is the most popular.
    [s = 0.] degenerates to uniform. @raise Invalid_argument if
    [n <= 0] or [s < 0.]. *)

val zipf_draw : zipf -> int

val zipf_pmf : zipf -> int -> float
(** The probability of a rank (for assertions about the sampler). *)

type poisson

val poisson_process : Prng.t -> rate:float -> poisson
(** Arrival process with the given mean events per unit time.
    @raise Invalid_argument if [rate <= 0.]. *)

val next_arrival : poisson -> float
(** The wait until the next arrival (exponentially distributed). *)

val arrivals_until : poisson -> horizon:float -> float list
(** Arrival instants in [0, horizon), ascending. *)
