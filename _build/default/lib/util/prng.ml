type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 output function: advance by the golden gamma, then mix. *)
let next_int64 t =
  let z = Int64.add t.state golden_gamma in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create ~seed:(next_int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Take the top bits (better distributed) and reduce; the modulo bias is
     negligible for the bounds used in the simulator (<< 2^32). *)
  let r = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits, as in the standard double construction. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t ~p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  let idx = Array.init n (fun i -> i) in
  shuffle t idx;
  List.init k (fun i -> arr.(idx.(i)))
