lib/obs/recorder.mli: Event Legion_util
