lib/obs/trace.mli: Event Legion_naming
