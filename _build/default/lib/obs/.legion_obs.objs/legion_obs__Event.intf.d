lib/obs/event.mli: Format Legion_naming Legion_wire
