lib/obs/recorder.ml: Array Event Hashtbl Legion_util List Stdlib String
