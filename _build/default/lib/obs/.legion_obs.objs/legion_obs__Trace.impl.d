lib/obs/trace.ml: Event Legion_naming List Printf Result String
