lib/obs/event.ml: Buffer Char Float Format Int64 Legion_naming Legion_wire List Printf String
