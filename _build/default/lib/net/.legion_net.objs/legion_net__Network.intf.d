lib/net/network.mli: Legion_obs Legion_sim Legion_util Legion_wire
