lib/net/network.mli: Legion_sim Legion_util Legion_wire
