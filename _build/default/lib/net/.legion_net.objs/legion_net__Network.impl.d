lib/net/network.ml: Array Legion_sim Legion_util Legion_wire List Stdlib
