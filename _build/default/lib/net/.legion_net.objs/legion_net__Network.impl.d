lib/net/network.ml: Array Legion_obs Legion_sim Legion_util Legion_wire List Stdlib
