module Value = Legion_wire.Value
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Impl = Legion_core.Impl

let file_unit = "legion.std.file"
let kv_unit = "legion.std.kv"
let queue_unit = "legion.std.queue"
let barrier_unit = "legion.std.barrier"

(* --- File --- *)

let file_factory (_ctx : Runtime.ctx) : Impl.part =
  let contents = ref "" and version = ref 0 in
  let read _ctx args _env k =
    match args with
    | [] ->
        k
          (Ok
             (Value.Record
                [ ("data", Value.Str !contents); ("version", Value.Int !version) ]))
    | _ -> Impl.bad_args k "Read takes no arguments"
  in
  let write _ctx args _env k =
    match args with
    | [ Value.Str s ] ->
        contents := s;
        incr version;
        k (Ok (Value.Int !version))
    | _ -> Impl.bad_args k "Write expects one string"
  in
  let append _ctx args _env k =
    match args with
    | [ Value.Str s ] ->
        contents := !contents ^ s;
        incr version;
        k (Ok (Value.Int !version))
    | _ -> Impl.bad_args k "Append expects one string"
  in
  let size _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int (String.length !contents)))
    | _ -> Impl.bad_args k "Size takes no arguments"
  in
  Impl.part
    ~methods:
      [ ("Read", read); ("Write", write); ("Append", append); ("Size", size) ]
    ~save:(fun () ->
      Value.Record [ ("c", Value.Str !contents); ("v", Value.Int !version) ])
    ~restore:(fun v ->
      match (Value.field v "c", Value.field v "v") with
      | Ok (Value.Str c), Ok (Value.Int ver) ->
          contents := c;
          version := ver;
          Ok ()
      | _ -> Error "file state malformed")
    file_unit

let file_idl =
  "interface LegionFile { Read(): any; Write(s: str): int; Append(s: str): int; \
   Size(): int; }"

(* --- Key-value store --- *)

let kv_factory (_ctx : Runtime.ctx) : Impl.part =
  let table : (string, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let put _ctx args _env k =
    match args with
    | [ Value.Str key; v ] ->
        Hashtbl.replace table key v;
        k Impl.ok_unit
    | _ -> Impl.bad_args k "Put expects (key: str, v)"
  in
  let get_key _ctx args _env k =
    match args with
    | [ Value.Str key ] -> (
        match Hashtbl.find_opt table key with
        | Some v -> k (Ok v)
        | None -> k (Error (Err.Not_bound (Printf.sprintf "no key %S" key))))
    | _ -> Impl.bad_args k "GetKey expects one string"
  in
  let delete_key _ctx args _env k =
    match args with
    | [ Value.Str key ] ->
        let present = Hashtbl.mem table key in
        Hashtbl.remove table key;
        k (Ok (Value.Bool present))
    | _ -> Impl.bad_args k "DeleteKey expects one string"
  in
  let keys _ctx args _env k =
    match args with
    | [] ->
        let ks = Hashtbl.fold (fun key _ acc -> key :: acc) table [] in
        k
          (Ok
             (Value.List
                (List.map (fun s -> Value.Str s) (List.sort String.compare ks))))
    | _ -> Impl.bad_args k "Keys takes no arguments"
  in
  let count _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int (Hashtbl.length table)))
    | _ -> Impl.bad_args k "Count takes no arguments"
  in
  let save () =
    Value.Record
      (List.sort
         (fun (a, _) (b, _) -> String.compare a b)
         (Hashtbl.fold (fun key v acc -> (key, v) :: acc) table []))
  in
  let restore v =
    match v with
    | Value.Record fields ->
        Hashtbl.reset table;
        List.iter (fun (key, v) -> Hashtbl.replace table key v) fields;
        Ok ()
    | _ -> Error "kv state must be a record"
  in
  Impl.part
    ~methods:
      [
        ("Put", put);
        ("GetKey", get_key);
        ("DeleteKey", delete_key);
        ("Keys", keys);
        ("Count", count);
      ]
    ~save ~restore kv_unit

let kv_idl =
  "interface LegionKv { Put(key: str, v: any); GetKey(key: str): any; \
   DeleteKey(key: str): bool; Keys(): list<str>; Count(): int; }"

(* --- Queue --- *)

let queue_factory (_ctx : Runtime.ctx) : Impl.part =
  let q : Value.t Queue.t = Queue.create () in
  let push _ctx args _env k =
    match args with
    | [ v ] ->
        Queue.push v q;
        k (Ok (Value.Int (Queue.length q)))
    | _ -> Impl.bad_args k "Push expects one value"
  in
  let pop _ctx args _env k =
    match args with
    | [] -> (
        match Queue.take_opt q with
        | Some v -> k (Ok v)
        | None -> k (Error (Err.Not_bound "queue is empty")))
    | _ -> Impl.bad_args k "Pop takes no arguments"
  in
  let peek _ctx args _env k =
    match args with
    | [] -> (
        match Queue.peek_opt q with
        | Some v -> k (Ok v)
        | None -> k (Error (Err.Not_bound "queue is empty")))
    | _ -> Impl.bad_args k "Peek takes no arguments"
  in
  let length _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int (Queue.length q)))
    | _ -> Impl.bad_args k "Length takes no arguments"
  in
  Impl.part
    ~methods:
      [ ("Push", push); ("Pop", pop); ("Peek", peek); ("Length", length) ]
    ~save:(fun () -> Value.List (List.of_seq (Queue.to_seq q)))
    ~restore:(fun v ->
      match v with
      | Value.List vs ->
          Queue.clear q;
          List.iter (fun x -> Queue.push x q) vs;
          Ok ()
      | _ -> Error "queue state must be a list")
    queue_unit

let queue_idl =
  "interface LegionQueue { Push(v: any): int; Pop(): any; Peek(): any; \
   Length(): int; }"

(* --- Barrier --- *)

let barrier_factory (_ctx : Runtime.ctx) : Impl.part =
  let parties = ref 1 in
  (* Continuations of parties already arrived: runtime state by design —
     see the interface documentation. *)
  let waiting : (Runtime.reply -> unit) list ref = ref [] in
  let configure _ctx args _env k =
    match args with
    | [ Value.Int n ] ->
        if n <= 0 then Impl.bad_args k "Configure expects a positive int"
        else begin
          (* Reconfiguring releases current waiters with an error: the
             phase they were waiting for no longer exists. *)
          List.iter
            (fun waiter -> waiter (Error (Err.Refused "barrier reconfigured")))
            !waiting;
          waiting := [];
          parties := n;
          k Impl.ok_unit
        end
    | _ -> Impl.bad_args k "Configure expects one int"
  in
  let arrive _ctx args _env k =
    match args with
    | [] ->
        waiting := k :: !waiting;
        if List.length !waiting >= !parties then begin
          let release = !waiting in
          let n = List.length release in
          waiting := [];
          List.iter (fun waiter -> waiter (Ok (Value.Int n))) release
        end
    | _ -> Impl.bad_args k "Arrive takes no arguments"
  in
  let waiting_meth _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int (List.length !waiting)))
    | _ -> Impl.bad_args k "Waiting takes no arguments"
  in
  Impl.part
    ~methods:
      [ ("Configure", configure); ("Arrive", arrive); ("Waiting", waiting_meth) ]
    ~save:(fun () -> Value.Int !parties)
    ~restore:(fun v ->
      match v with
      | Value.Int n when n > 0 ->
          parties := n;
          Ok ()
      | _ -> Error "barrier state must be a positive int")
    barrier_unit

let barrier_idl =
  "interface LegionBarrier { Configure(parties: int); Arrive(): int; \
   Waiting(): int; }"

(* --- Lock --- *)

let lock_unit = "legion.std.lock"

let lock_factory (_ctx : Runtime.ctx) : Impl.part =
  (* Holder and queue are runtime state by design (see interface). *)
  let holder : Legion_naming.Loid.t option ref = ref None in
  let waiting : (Legion_naming.Loid.t * (Runtime.reply -> unit)) Queue.t =
    Queue.create ()
  in
  let grant who k =
    holder := Some who;
    k Impl.ok_unit
  in
  let acquire _ctx args env k =
    match args with
    | [] -> (
        let who = env.Legion_sec.Env.calling in
        match !holder with
        | None -> grant who k
        | Some _ -> Queue.push (who, k) waiting)
    | _ -> Impl.bad_args k "Acquire takes no arguments"
  in
  let release _ctx args env k =
    match args with
    | [] -> (
        let who = env.Legion_sec.Env.calling in
        match !holder with
        | Some h when Legion_naming.Loid.equal h who ->
            (match Queue.take_opt waiting with
            | Some (next, waiter) -> grant next waiter
            | None -> holder := None);
            k Impl.ok_unit
        | Some _ -> k (Error (Err.Refused "lock held by another agent"))
        | None -> k (Error (Err.Refused "lock is not held")))
    | _ -> Impl.bad_args k "Release takes no arguments"
  in
  let holder_meth _ctx args _env k =
    match args with
    | [] -> (
        match !holder with
        | Some h -> k (Ok (Legion_naming.Loid.to_value h))
        | None -> k (Error (Err.Not_bound "lock is free")))
    | _ -> Impl.bad_args k "Holder takes no arguments"
  in
  let queue_length _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int (Queue.length waiting)))
    | _ -> Impl.bad_args k "QueueLength takes no arguments"
  in
  Impl.part
    ~methods:
      [
        ("Acquire", acquire);
        ("Release", release);
        ("Holder", holder_meth);
        ("QueueLength", queue_length);
      ]
    lock_unit

let lock_idl =
  "interface LegionLock { Acquire(); Release(); Holder(): loid; \
   QueueLength(): int; }"

(* --- Tuple space --- *)

let tspace_unit = "legion.std.tspace"

(* Wildcards are the string "_"; everything else matches by equality. *)
let tuple_matches ~pattern tuple =
  List.length pattern = List.length tuple
  && List.for_all2
       (fun p t -> match p with Value.Str "_" -> true | _ -> Value.equal p t)
       pattern tuple

let tspace_factory (_ctx : Runtime.ctx) : Impl.part =
  let tuples : Value.t list list ref = ref [] in
  (* (pattern, destructive?, continuation), FIFO. *)
  let pending : (Value.t list * bool * (Runtime.reply -> unit)) Queue.t =
    Queue.create ()
  in
  let take_match pattern =
    let rec split acc = function
      | [] -> None
      | t :: rest ->
          if tuple_matches ~pattern t then Some (t, List.rev_append acc rest)
          else split (t :: acc) rest
    in
    split [] !tuples
  in
  (* On every deposit, retry the pending requests in arrival order. *)
  let service_pending () =
    let still = Queue.create () in
    Queue.iter
      (fun (pattern, destructive, k) ->
        match take_match pattern with
        | Some (t, rest) ->
            if destructive then tuples := rest;
            k (Ok (Value.List t))
        | None -> Queue.push (pattern, destructive, k) still)
      pending;
    Queue.clear pending;
    Queue.transfer still pending
  in
  let out _ctx args _env k =
    match args with
    | [ Value.List t ] ->
        tuples := !tuples @ [ t ];
        service_pending ();
        k Impl.ok_unit
    | _ -> Impl.bad_args k "Out expects one tuple (list)"
  in
  let blocking destructive name _ctx args _env k =
    match args with
    | [ Value.List pattern ] -> (
        match take_match pattern with
        | Some (t, rest) ->
            if destructive then tuples := rest;
            k (Ok (Value.List t))
        | None -> Queue.push (pattern, destructive, k) pending)
    | _ -> Impl.bad_args k (name ^ " expects one pattern (list)")
  in
  let non_blocking destructive name _ctx args _env k =
    match args with
    | [ Value.List pattern ] -> (
        match take_match pattern with
        | Some (t, rest) ->
            if destructive then tuples := rest;
            k (Ok (Value.List t))
        | None -> k (Error (Err.Not_bound "no matching tuple")))
    | _ -> Impl.bad_args k (name ^ " expects one pattern (list)")
  in
  let size _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int (List.length !tuples)))
    | _ -> Impl.bad_args k "Size takes no arguments"
  in
  (* Shutdown/reset: drop every tuple and release every parked waiter
     with a refusal, so masters can dismiss idle workers cleanly. *)
  let flush _ctx args _env k =
    match args with
    | [] ->
        let dropped = List.length !tuples in
        tuples := [];
        Queue.iter
          (fun (_, _, waiter) -> waiter (Error (Err.Refused "tuple space flushed")))
          pending;
        Queue.clear pending;
        k (Ok (Value.Int dropped))
    | _ -> Impl.bad_args k "Flush takes no arguments"
  in
  Impl.part
    ~methods:
      [
        ("Out", out);
        ("In", blocking true "In");
        ("Rd", blocking false "Rd");
        ("TryIn", non_blocking true "TryIn");
        ("TryRd", non_blocking false "TryRd");
        ("Size", size);
        ("Flush", flush);
      ]
    ~save:(fun () -> Value.List (List.map (fun t -> Value.List t) !tuples))
    ~restore:(fun v ->
      match v with
      | Value.List ts ->
          tuples :=
            List.filter_map (function Value.List t -> Some t | _ -> None) ts;
          Ok ()
      | _ -> Error "tuple space state must be a list")
    tspace_unit

let tspace_idl =
  "interface LegionTupleSpace { Out(t: list<any>); In(p: list<any>): list<any>; \
   Rd(p: list<any>): list<any>; TryIn(p: list<any>): list<any>; \
   TryRd(p: list<any>): list<any>; Size(): int; Flush(): int; }"

let register () =
  Impl.register file_unit file_factory;
  Impl.register kv_unit kv_factory;
  Impl.register queue_unit queue_factory;
  Impl.register barrier_unit barrier_factory;
  Impl.register lock_unit lock_factory;
  Impl.register tspace_unit tspace_factory
