(** A standard library of application implementation units.

    The paper motivates Legion with shared files and data, wide-area
    applications, and cooperating objects; these units are the
    ready-made building blocks for exactly those programs. Each is an
    ordinary {!Legion_core.Impl} unit: derive a class carrying it (plus
    ["legion.object"]), create instances, and the objects deactivate,
    migrate and replicate like everything else — all state round-trips
    through SaveState/RestoreState.

    {2 File ("legion.std.file")}

    A versioned byte container (the "remote files and data" of §1):
    - [Read(): record{data: str, version: int}]
    - [Write(s: str): int] — replaces contents, returns new version
    - [Append(s: str): int]
    - [Size(): int]

    {2 Key-value store ("legion.std.kv")}

    A string-keyed map of values:
    - [Put(key: str, v: any): unit]
    - [GetKey(key: str): any] — [Not_bound] when absent
    - [DeleteKey(key: str): bool] — was it present?
    - [Keys(): list<str>]
    - [Count(): int]

    {2 Queue ("legion.std.queue")}

    A FIFO of values (work distribution between producers/consumers):
    - [Push(v: any): int] — new length
    - [Pop(): any] — [Not_bound] when empty
    - [Peek(): any] — [Not_bound] when empty
    - [Length(): int]

    {2 Barrier ("legion.std.barrier")}

    An n-party synchronization point for parallel phases (§1's "parallel
    processing" support). Arrivals before the barrier is full get their
    reply {e deferred} — the non-blocking method model lets the object
    hold the continuation until the last party arrives, when every
    waiter is released with the arrival count:
    - [Configure(parties: int): unit] — resets the barrier
    - [Arrive(): int] — replies only when all parties have arrived
    - [Waiting(): int]

    Deferred continuations are runtime state, not object state: parties
    waiting at a barrier that is deactivated are released with an error
    by their own call timeouts, and the barrier restarts empty — the
    honest semantics of a crash mid-phase.

    Because [Arrive] blocks until the phase completes, callers must
    raise their per-call deadline ([Runtime.invoke ~timeout]) above the
    expected phase length: with the default deadline, the communication
    layer would declare the deferred reply lost and {e retry}, arriving
    twice.

    {2 Lock ("legion.std.lock")}

    A mutex whose [Acquire] defers its reply while the lock is held —
    the same deferred-continuation technique as the barrier, with the
    same deadline caveat:
    - [Acquire(): unit] — replies when the lock is granted
    - [Release(): unit] — [Refused] unless the caller (by Calling
      Agent) holds the lock; grants to the next waiter FIFO
    - [Holder(): loid] — [Not_bound] when free
    - [QueueLength(): int]

    The holder and wait queue are runtime state: deactivating a lock
    releases it (waiters see their own timeouts), which is the honest
    crash semantics for a lock service without leases.

    {2 Tuple space ("legion.std.tspace")}

    A Linda-style coordination space — the canonical 1990s distributed
    programming substrate, and a natural fit for Legion's deferred
    replies:
    - [Out(tuple: list<any>): unit] — deposit a tuple
    - [Rd(pattern: list<any>): list<any>] — read a matching tuple
      (non-destructive); defers until one exists
    - [In(pattern: list<any>): list<any>] — take a matching tuple
      (destructive); defers until one exists
    - [TryRd(pattern)/TryIn(pattern)] — non-blocking variants,
      [Not_bound] when nothing matches
    - [Size(): int]
    - [Flush(): int] — drop every tuple (returning how many) and
      release every parked waiter with a refusal: the clean-shutdown
      path for dismissing idle workers

    Patterns match tuples element-wise and must have the same length;
    the wildcard [Str "_"] matches any element ("formal"), anything
    else matches by equality ("actual"). Deposited tuples persist
    through deactivation; pending [In]/[Rd] continuations do not (same
    caveat as the lock). *)

val file_unit : string
val kv_unit : string
val queue_unit : string
val barrier_unit : string
val lock_unit : string
val tspace_unit : string

val register : unit -> unit
(** Install all four units in the {!Legion_core.Impl} registry. *)

val file_idl : string
val kv_idl : string
val queue_idl : string
val barrier_idl : string
val lock_idl : string
val tspace_idl : string
(** IDL sources matching each unit, ready for typed Derive calls. *)
