lib/objects/std_parts.ml: Hashtbl Legion_core Legion_naming Legion_rt Legion_sec Legion_wire List Printf Queue String
