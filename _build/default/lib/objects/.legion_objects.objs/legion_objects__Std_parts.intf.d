lib/objects/std_parts.mli:
