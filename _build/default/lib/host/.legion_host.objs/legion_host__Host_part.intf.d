lib/host/host_part.mli: Legion_core Legion_wire
