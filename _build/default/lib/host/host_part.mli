(** Host Objects (paper §2.3, §3.9): the "legion.host" unit.

    "A Host Object is a host's representative to Legion. It is
    responsible for executing objects on the host, reaping objects, and
    reporting object exceptions." It is the only component that starts
    processes; Magistrates ask it to [Activate] Object Persistent
    Representations, and it is "ultimately responsible for deciding
    which objects can run on the host it represents".

    Methods (§3.9 names): [Activate(obj: loid, opr: blob): record] —
    start a process from an OPR, replying its Object Address;
    [Deactivate(obj: loid): blob] — capture [SaveState], stop the
    process, and return the refreshed OPR; [Kill(obj: loid): unit];
    [SetCPUload(n: int): unit] — bound concurrent processes (0 clears
    the bound); [SetMemoryUsage(n: int): unit]; [GetState(): record];
    [ListProcesses(): list<loid>]; [IsAlive(obj: loid): bool] — is the
    object's process currently running here (Magistrates ask before
    declaring a reportedly-stale address dead); [IdleProcesses(threshold:
    float): list<loid>] — processes that have received no call for at
    least [threshold] virtual seconds (feeds Magistrate idle sweeps); [Reap(): int] — drop table entries
    whose process has died outside the Host Object's control, replying
    how many were reaped (the paper's "reaping objects" duty). *)

module Impl := Legion_core.Impl
module Value := Legion_wire.Value

val unit_name : string
(** ["legion.host"]. *)

val state_value : ?capacity:int -> unit -> Value.t
(** Initial unit state; [capacity] bounds concurrent processes. *)

val factory : Impl.factory
(** The unit manages processes on the simulated host its object runs
    on. *)

val register : unit -> unit
