(** Discrete-event simulation engine.

    A single virtual clock and a priority queue of events. Events
    scheduled for the same instant fire in scheduling order (FIFO), which
    together with the seeded PRNGs makes every run deterministic.

    The whole Legion runtime is driven by this engine: message delivery,
    RPC timeouts, and workload arrivals are all events. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time, in seconds. Starts at [0.]. *)

type handle
(** A scheduled event, usable to cancel it. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative delays
    are clamped to [0.] (fire "now", after currently-queued same-time
    events). *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant; times in the past are clamped to [now]. *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_cancelled : handle -> bool

val step : t -> bool
(** Fire the earliest pending event. Returns [false] when the queue is
    empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Fire events until the queue is empty, virtual time would exceed
    [until], or [max_events] have fired in this call. Events scheduled at
    exactly [until] still fire. *)

val pending : t -> int
(** Number of queued (uncancelled) events. *)

val events_fired : t -> int
(** Total events fired since creation. *)
