module Heap = Legion_util.Heap

type event = {
  time : float;
  seq : int;  (* tie-break: same-instant events fire in scheduling order *)
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable fired : int;
  queue : event Heap.t;
}

let cmp_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { clock = 0.0; seq = 0; fired = 0; queue = Heap.create ~cmp:cmp_event }

let now t = t.clock

let schedule_at t ~time action =
  let time = Float.max time t.clock in
  let ev = { time; seq = t.seq; action; cancelled = false } in
  t.seq <- t.seq + 1;
  Heap.push t.queue ev;
  ev

let schedule t ~delay action =
  schedule_at t ~time:(t.clock +. Float.max 0.0 delay) action

let cancel ev = ev.cancelled <- true
let is_cancelled ev = ev.cancelled

(* Pop events, discarding cancelled ones lazily. *)
let rec next_live t =
  match Heap.pop t.queue with
  | None -> None
  | Some ev when ev.cancelled -> next_live t
  | Some ev -> Some ev

let step t =
  match next_live t with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      t.fired <- t.fired + 1;
      ev.action ();
      true

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> -1 | Some n -> n) in
  let continue () =
    if !budget = 0 then false
    else
      match Heap.peek t.queue with
      | None -> false
      | Some ev ->
          if ev.cancelled then begin
            ignore (Heap.pop t.queue);
            true
          end
          else begin
            match until with
            | Some limit when ev.time > limit -> false
            | _ ->
                if step t then begin
                  if !budget > 0 then decr budget;
                  true
                end
                else false
          end
  in
  while continue () do
    ()
  done

let pending t =
  List.length (List.filter (fun ev -> not ev.cancelled) (Heap.to_list t.queue))

let events_fired t = t.fired
