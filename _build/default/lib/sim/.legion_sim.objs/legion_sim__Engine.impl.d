lib/sim/engine.ml: Float Int Legion_util List
