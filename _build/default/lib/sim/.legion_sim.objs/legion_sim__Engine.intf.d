lib/sim/engine.mli:
