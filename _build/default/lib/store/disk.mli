(** A simulated disk: a flat keyed blob store.

    Jurisdictions own "some aggregate persistent storage space" (§2.2)
    modelled as a set of disks; "all of a Jurisdiction's persistent
    storage space must be visible from each of its hosts" (§3.1), which
    holds trivially here. *)

type t

val create : name:string -> t
val name : t -> string

val write : t -> key:string -> string -> unit
(** Overwrites silently. *)

val read : t -> key:string -> string option
val delete : t -> key:string -> unit
val exists : t -> key:string -> bool
val keys : t -> string list
val file_count : t -> int
val bytes_used : t -> int

val writes : t -> int
val reads : t -> int
(** Operation counters (experiment instrumentation). *)
