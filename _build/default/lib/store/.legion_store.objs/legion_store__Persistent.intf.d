lib/store/persistent.mli: Disk Format Legion_naming Legion_wire
