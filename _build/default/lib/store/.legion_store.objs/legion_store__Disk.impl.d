lib/store/disk.ml: Hashtbl String
