lib/store/disk.mli:
