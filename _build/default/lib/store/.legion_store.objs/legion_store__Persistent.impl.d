lib/store/persistent.ml: Disk Format Legion_naming Legion_wire List Printf Result String
