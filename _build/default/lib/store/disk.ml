type t = {
  name : string;
  files : (string, string) Hashtbl.t;
  mutable bytes : int;
  mutable writes : int;
  mutable reads : int;
}

let create ~name = { name; files = Hashtbl.create 64; bytes = 0; writes = 0; reads = 0 }

let name t = t.name

let write t ~key blob =
  (match Hashtbl.find_opt t.files key with
  | Some old -> t.bytes <- t.bytes - String.length old
  | None -> ());
  Hashtbl.replace t.files key blob;
  t.bytes <- t.bytes + String.length blob;
  t.writes <- t.writes + 1

let read t ~key =
  t.reads <- t.reads + 1;
  Hashtbl.find_opt t.files key

let delete t ~key =
  match Hashtbl.find_opt t.files key with
  | Some old ->
      t.bytes <- t.bytes - String.length old;
      Hashtbl.remove t.files key
  | None -> ()

let exists t ~key = Hashtbl.mem t.files key
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.files []
let file_count t = Hashtbl.length t.files
let bytes_used t = t.bytes
let writes t = t.writes
let reads t = t.reads
