module Value = Legion_wire.Value
module Loid = Legion_naming.Loid

module Opa = struct
  type t = { disk : string; file : string }

  let equal a b = String.equal a.disk b.disk && String.equal a.file b.file
  let pp ppf t = Format.fprintf ppf "%s:%s" t.disk t.file

  let to_value t =
    Value.Record [ ("d", Value.Str t.disk); ("f", Value.Str t.file) ]

  let of_value v =
    let ( let* ) r f = Result.bind r f in
    let err e = Format.asprintf "opa: %a" Value.pp_error e in
    let* d = Result.map_error err (Result.bind (Value.field v "d") Value.to_str) in
    let* f = Result.map_error err (Result.bind (Value.field v "f") Value.to_str) in
    Ok { disk = d; file = f }
end

type t = { disks : Disk.t list; mutable rr : int; mutable version : int }

let create ~disks =
  if disks = [] then invalid_arg "Persistent.create: no disks";
  { disks; rr = 0; version = 0 }

let disks t = t.disks

let find_disk t name = List.find_opt (fun d -> String.equal (Disk.name d) name) t.disks

let put t ~loid blob =
  let disk = List.nth t.disks (t.rr mod List.length t.disks) in
  t.rr <- t.rr + 1;
  t.version <- t.version + 1;
  let file = Printf.sprintf "%s.v%d.opr" (Loid.to_string loid) t.version in
  Disk.write disk ~key:file blob;
  { Opa.disk = Disk.name disk; file }

let put_at t (opa : Opa.t) blob =
  match find_disk t opa.Opa.disk with
  | None -> Error (Printf.sprintf "no disk %s in this jurisdiction" opa.Opa.disk)
  | Some d ->
      Disk.write d ~key:opa.Opa.file blob;
      Ok ()

let get t (opa : Opa.t) =
  match find_disk t opa.Opa.disk with
  | None -> None
  | Some d -> Disk.read d ~key:opa.Opa.file

let remove t (opa : Opa.t) =
  match find_disk t opa.Opa.disk with
  | None -> ()
  | Some d -> Disk.delete d ~key:opa.Opa.file

let total_bytes t = List.fold_left (fun acc d -> acc + Disk.bytes_used d) 0 t.disks
let total_files t = List.fold_left (fun acc d -> acc + Disk.file_count d) 0 t.disks
