(** Jurisdiction storage: Object Persistent Addresses over a disk set.

    "An Object Persistent Address will typically be a file name, and
    will only be meaningful within the Jurisdiction in which it
    resides" (§3.1.1). [Opa.t] is (disk name, file name); a
    [Persistent.t] stripes writes across its disks round-robin. *)

module Value := Legion_wire.Value

module Opa : sig
  type t = { disk : string; file : string }

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_value : t -> Value.t
  val of_value : Value.t -> (t, string) result
end

type t

val create : disks:Disk.t list -> t
(** @raise Invalid_argument on an empty disk list. *)

val disks : t -> Disk.t list

val put : t -> loid:Legion_naming.Loid.t -> string -> Opa.t
(** Store a blob for an object; each call writes a fresh version file
    and returns its address. *)

val put_at : t -> Opa.t -> string -> (unit, string) result
(** Overwrite a specific address (re-storing at a known OPA). Fails if
    the disk is not part of this store. *)

val get : t -> Opa.t -> string option
val remove : t -> Opa.t -> unit
val total_bytes : t -> int
val total_files : t -> int
