lib/sched/sched_part.mli: Legion_core
