lib/sched/sched_part.ml: Array Legion_core Legion_naming Legion_rt Legion_sec Legion_util Legion_wire List Result
