module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Prng = Legion_util.Prng
module Runtime = Legion_rt.Runtime
module Impl = Legion_core.Impl
module C = Legion_core.Convert

module Env = Legion_sec.Env
module Err = Legion_rt.Err

let unit_random = "legion.sched.random"
let unit_round_robin = "legion.sched.round_robin"
let unit_least_loaded = "legion.sched.least_loaded"
let unit_live_load = "legion.sched.live_load"

let decode_candidates v =
  let ( let* ) r f = Result.bind r f in
  match v with
  | Value.List cs ->
      let rec loop acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest ->
            let* host = C.loid_field c "host" in
            let* load = C.int_field c "load" in
            loop ((host, load) :: acc) rest
      in
      loop [] cs
  | _ -> Error "PickHost: candidates must be a list"

(* All three agents share the shell: decode candidates, refuse empty
   lists, delegate the choice. *)
let picker unit_name choose (_ctx : Runtime.ctx) : Impl.part =
  let pick_host _ctx args _env k =
    match args with
    | [ cands_v ] -> (
        match decode_candidates cands_v with
        | Error msg -> Impl.bad_args k msg
        | Ok [] -> Impl.bad_args k "PickHost: no candidates"
        | Ok candidates -> k (Ok (Loid.to_value (choose candidates))))
    | _ -> Impl.bad_args k "PickHost expects one candidate list"
  in
  Impl.part ~methods:[ ("PickHost", pick_host) ] unit_name

let factory_random (ctx : Runtime.ctx) : Impl.part =
  let prng = Prng.split (Runtime.prng ctx.Runtime.rt) in
  picker unit_random
    (fun candidates -> fst (Prng.choose prng (Array.of_list candidates)))
    ctx

let factory_round_robin (ctx : Runtime.ctx) : Impl.part =
  let cursor = ref 0 in
  picker unit_round_robin
    (fun candidates ->
      let n = List.length candidates in
      let pick = fst (List.nth candidates (!cursor mod n)) in
      incr cursor;
      pick)
    ctx

let factory_least_loaded (ctx : Runtime.ctx) : Impl.part =
  picker unit_least_loaded
    (fun candidates ->
      let best =
        List.fold_left
          (fun acc (h, l) ->
            match acc with Some (_, bl) when bl <= l -> acc | _ -> Some (h, l))
          None candidates
      in
      match best with Some (h, _) -> h | None -> assert false)
    ctx

(* The live-load agent distrusts the Magistrate's local activation
   counts (they drift: deactivations, sweeps, and crashes are invisible
   to them) and instead polls every candidate Host Object's GetState
   before choosing — accuracy bought with one RPC fan-out per placement.
   E11 quantifies the trade against the local policies. *)
let factory_live_load (ctx : Runtime.ctx) : Impl.part =
  let self = Runtime.proc_loid ctx.Runtime.self in
  let pick_host _ctx args env k =
    match args with
    | [ cands_v ] -> (
        match decode_candidates cands_v with
        | Error msg -> Impl.bad_args k msg
        | Ok [] -> Impl.bad_args k "PickHost: no candidates"
        | Ok candidates ->
            let denv = Env.delegate env ~calling:self in
            let n = List.length candidates in
            let answers = ref [] in
            let pending = ref n in
            let finish () =
              match !answers with
              | [] ->
                  (* Nobody answered the probe: fall back to the
                     magistrate-supplied counts. *)
                  let best =
                    List.fold_left
                      (fun acc (h, l) ->
                        match acc with
                        | Some (_, bl) when bl <= l -> acc
                        | _ -> Some (h, l))
                      None candidates
                  in
                  (match best with
                  | Some (h, _) -> k (Ok (Loid.to_value h))
                  | None -> k (Error (Err.Refused "no candidates")))
              | answered ->
                  let best =
                    List.fold_left
                      (fun acc (h, l) ->
                        match acc with
                        | Some (_, bl) when bl <= l -> acc
                        | _ -> Some (h, l))
                      None answered
                  in
                  (match best with
                  | Some (h, _) -> k (Ok (Loid.to_value h))
                  | None -> k (Error (Err.Refused "no candidates")))
            in
            let probe_timeout =
              (Runtime.config ctx.Runtime.rt).Runtime.call_timeout /. 10.0
            in
            List.iter
              (fun (h, _) ->
                Runtime.invoke ctx ~timeout:probe_timeout ~dst:h ~meth:"GetState"
                  ~args:[] ~env:denv (fun r ->
                    (match r with
                    | Ok st -> (
                        match Legion_core.Convert.int_field st "load" with
                        | Ok load -> answers := (h, load) :: !answers
                        | Error _ -> ())
                    | Error _ -> ());
                    decr pending;
                    if !pending = 0 then finish ()))
              candidates)
    | _ -> Impl.bad_args k "PickHost expects one candidate list"
  in
  Impl.part ~methods:[ ("PickHost", pick_host) ] unit_live_load

let register () =
  Impl.register unit_random factory_random;
  Impl.register unit_round_robin factory_round_robin;
  Impl.register unit_least_loaded factory_least_loaded;
  Impl.register unit_live_load factory_live_load
