(** Scheduling Agents.

    "Scheduling is intentionally left out of the core object model,
    except for a few hooks" (§3.7): the class logical table carries a
    Scheduling Agent LOID per object, and Magistrates consult that agent
    when placing an activation. "Complex scheduling policies are
    intended to be implemented outside of the Magistrate in Scheduling
    Agents" (§3.8).

    A Scheduling Agent answers one method:
    [PickHost(candidates: list<record{host: loid, load: int}>): loid].

    Four policies ship as distinct implementation units, so sites can
    pick per class or per object:
    - ["legion.sched.random"] — uniform choice;
    - ["legion.sched.round_robin"] — cycles through candidates;
    - ["legion.sched.least_loaded"] — minimum reported load, ties
      broken by list order;
    - ["legion.sched.live_load"] — polls each candidate Host Object's
      [GetState] (short-timeout probes) and places on the host with the
      fewest live processes, falling back to the reported counts when
      no probe answers. Accurate under churn, at one RPC fan-out per
      placement. *)

module Impl := Legion_core.Impl

val unit_random : string
val unit_round_robin : string
val unit_least_loaded : string
val unit_live_load : string

val factory_random : Impl.factory
val factory_round_robin : Impl.factory
val factory_least_loaded : Impl.factory
val factory_live_load : Impl.factory

val register : unit -> unit
(** Install all four units. *)
