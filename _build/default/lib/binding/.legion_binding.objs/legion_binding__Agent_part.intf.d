lib/binding/agent_part.mli: Legion_core Legion_naming Legion_wire
