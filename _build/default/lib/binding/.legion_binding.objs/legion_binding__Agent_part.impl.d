lib/binding/agent_part.ml: Legion_core Legion_naming Legion_obs Legion_rt Legion_sec Legion_wire Result
