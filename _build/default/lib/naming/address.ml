module Value = Legion_wire.Value
module Prng = Legion_util.Prng

type element =
  | Ip of { host : int32; port : int }
  | Ip_node of { host : int32; port : int; node : int }
  | Sim of { host : int; slot : int }
  | Raw of { addr_type : int32; payload : string }

type semantic =
  | All
  | Any_random
  | First_k of int
  | K_random of int
  | Ordered_failover
  | Custom of string

type t = { elements : element list; semantic : semantic }

let make ?(semantic = Ordered_failover) elements =
  if elements = [] then invalid_arg "Address.make: empty element list";
  { elements; semantic }

let singleton e = make [ e ]
let elements t = t.elements
let semantic t = t.semantic

let addr_type = function
  | Ip _ -> 1l
  | Ip_node _ -> 2l
  | Sim _ -> 3l
  | Raw { addr_type; _ } -> addr_type

let sim_host = function
  | Sim { host; _ } -> Some host
  | Ip _ | Ip_node _ | Raw _ -> None

let targets t prng =
  match t.semantic with
  | All -> t.elements
  | Any_random -> [ Prng.choose prng (Array.of_list t.elements) ]
  | First_k k ->
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | e :: rest -> e :: take (n - 1) rest
      in
      take (Stdlib.max 0 k) t.elements
  | K_random k ->
      let arr = Array.of_list t.elements in
      let k = Stdlib.max 0 (Stdlib.min k (Array.length arr)) in
      Prng.sample_without_replacement prng k arr
  | Ordered_failover | Custom _ -> t.elements

let equal_element a b =
  match (a, b) with
  | Ip x, Ip y -> Int32.equal x.host y.host && x.port = y.port
  | Ip_node x, Ip_node y ->
      Int32.equal x.host y.host && x.port = y.port && x.node = y.node
  | Sim x, Sim y -> x.host = y.host && x.slot = y.slot
  | Raw x, Raw y ->
      Int32.equal x.addr_type y.addr_type && String.equal x.payload y.payload
  | (Ip _ | Ip_node _ | Sim _ | Raw _), _ -> false

let compare_element a b = Stdlib.compare a b

let equal_semantic a b =
  match (a, b) with
  | All, All | Any_random, Any_random | Ordered_failover, Ordered_failover ->
      true
  | First_k x, First_k y | K_random x, K_random y -> x = y
  | Custom x, Custom y -> String.equal x y
  | (All | Any_random | First_k _ | K_random _ | Ordered_failover | Custom _), _
    ->
      false

let equal a b =
  equal_semantic a.semantic b.semantic
  && List.equal equal_element a.elements b.elements

let compare a b =
  let c = Stdlib.compare a.semantic b.semantic in
  if c <> 0 then c else List.compare compare_element a.elements b.elements

let pp_element ppf = function
  | Ip { host; port } -> Format.fprintf ppf "ip:%lx:%d" host port
  | Ip_node { host; port; node } -> Format.fprintf ppf "ip:%lx:%d@%d" host port node
  | Sim { host; slot } -> Format.fprintf ppf "sim:%d:%d" host slot
  | Raw { addr_type; payload } ->
      Format.fprintf ppf "raw:%ld:%d bytes" addr_type (String.length payload)

let pp_semantic ppf = function
  | All -> Format.fprintf ppf "all"
  | Any_random -> Format.fprintf ppf "any"
  | First_k k -> Format.fprintf ppf "first-%d" k
  | K_random k -> Format.fprintf ppf "rand-%d" k
  | Ordered_failover -> Format.fprintf ppf "failover"
  | Custom s -> Format.fprintf ppf "custom:%s" s

let pp ppf t =
  Format.fprintf ppf "<%a|%a>" pp_semantic t.semantic
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       pp_element)
    t.elements

let element_to_value = function
  | Ip { host; port } ->
      Value.Record [ ("t", Value.Int 1); ("h", Value.I64 (Int64.of_int32 host)); ("p", Value.Int port) ]
  | Ip_node { host; port; node } ->
      Value.Record
        [
          ("t", Value.Int 2);
          ("h", Value.I64 (Int64.of_int32 host));
          ("p", Value.Int port);
          ("n", Value.Int node);
        ]
  | Sim { host; slot } ->
      Value.Record [ ("t", Value.Int 3); ("h", Value.Int host); ("s", Value.Int slot) ]
  | Raw { addr_type; payload } ->
      Value.Record
        [
          ("t", Value.Int 0);
          ("a", Value.I64 (Int64.of_int32 addr_type));
          ("b", Value.Blob payload);
        ]

let ( let* ) r f = Result.bind r f

let err_of e = Format.asprintf "address: %a" Value.pp_error e

let intf v name = Result.map_error err_of (Result.bind (Value.field v name) Value.to_int)
let i64f v name = Result.map_error err_of (Result.bind (Value.field v name) Value.to_i64)
let blobf v name = Result.map_error err_of (Result.bind (Value.field v name) Value.to_blob)

let element_of_value v =
  let* tag = intf v "t" in
  match tag with
  | 1 ->
      let* h = i64f v "h" in
      let* p = intf v "p" in
      Ok (Ip { host = Int64.to_int32 h; port = p })
  | 2 ->
      let* h = i64f v "h" in
      let* p = intf v "p" in
      let* n = intf v "n" in
      Ok (Ip_node { host = Int64.to_int32 h; port = p; node = n })
  | 3 ->
      let* h = intf v "h" in
      let* s = intf v "s" in
      Ok (Sim { host = h; slot = s })
  | 0 ->
      let* a = i64f v "a" in
      let* b = blobf v "b" in
      Ok (Raw { addr_type = Int64.to_int32 a; payload = b })
  | n -> Error (Printf.sprintf "address: unknown element tag %d" n)

let semantic_to_value = function
  | All -> Value.Record [ ("k", Value.Str "all") ]
  | Any_random -> Value.Record [ ("k", Value.Str "any") ]
  | First_k k -> Value.Record [ ("k", Value.Str "first"); ("n", Value.Int k) ]
  | K_random k -> Value.Record [ ("k", Value.Str "krand"); ("n", Value.Int k) ]
  | Ordered_failover -> Value.Record [ ("k", Value.Str "failover") ]
  | Custom s -> Value.Record [ ("k", Value.Str "custom"); ("n2", Value.Str s) ]

let semantic_of_value v =
  let* kind =
    Result.map_error err_of (Result.bind (Value.field v "k") Value.to_str)
  in
  match kind with
  | "all" -> Ok All
  | "any" -> Ok Any_random
  | "first" ->
      let* n = intf v "n" in
      Ok (First_k n)
  | "krand" ->
      let* n = intf v "n" in
      Ok (K_random n)
  | "failover" -> Ok Ordered_failover
  | "custom" ->
      let* s =
        Result.map_error err_of (Result.bind (Value.field v "n2") Value.to_str)
      in
      Ok (Custom s)
  | s -> Error (Printf.sprintf "address: unknown semantic %S" s)

let to_value t =
  Value.Record
    [
      ("sem", semantic_to_value t.semantic);
      ("els", Value.List (List.map element_to_value t.elements));
    ]

let of_value v =
  let* sem_v = Result.map_error err_of (Value.field v "sem") in
  let* sem = semantic_of_value sem_v in
  let* els_v = Result.map_error err_of (Value.field v "els") in
  let* els =
    match els_v with
    | Value.List vs ->
        let rec loop acc = function
          | [] -> Ok (List.rev acc)
          | x :: rest ->
              let* e = element_of_value x in
              loop (e :: acc) rest
        in
        loop [] vs
    | _ -> Error "address: els is not a list"
  in
  if els = [] then Error "address: empty element list"
  else Ok { elements = els; semantic = sem }
