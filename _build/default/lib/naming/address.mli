(** Object Addresses (paper §3.4).

    An {e Object Address Element} carries a 32-bit address-type tag and
    type-specific payload (the paper reserves 256 bits; we keep the same
    structure with typed payloads). An {e Object Address} is a non-empty
    list of elements together with a {e semantic} describing how the list
    is used — the hook that enables system-level replication (§4.3). *)

type element =
  | Ip of { host : int32; port : int }
      (** A normal IP endpoint: 32-bit address + 16-bit port. *)
  | Ip_node of { host : int32; port : int; node : int }
      (** IP endpoint on a multiprocessor, with a 32-bit platform-specific
          internal node number (paper §3.4). *)
  | Sim of { host : int; slot : int }
      (** An endpoint in the simulated internetwork: simulator host id and
          a per-host delivery slot (the simulator's "port"). *)
  | Raw of { addr_type : int32; payload : string }
      (** Escape hatch for address types the model does not interpret. *)

type semantic =
  | All  (** Deliver to every element (replica broadcast). *)
  | Any_random  (** Pick one element uniformly at random. *)
  | First_k of int  (** Deliver to the first [k] elements of the list. *)
  | K_random of int
      (** Deliver to [k] of the N elements chosen at random without
          replacement — the paper's "k of the N addresses in the list"
          option (§3.4). *)
  | Ordered_failover
      (** Try elements in order until one accepts delivery. *)
  | Custom of string
      (** User-defined semantic, named; the paper provides for
          user-definable extensions. Interpreted by the application. *)

type t

val make : ?semantic:semantic -> element list -> t
(** Defaults to [Ordered_failover], the semantic of a singleton address.
    @raise Invalid_argument on an empty element list. *)

val singleton : element -> t
val elements : t -> element list
val semantic : t -> semantic

val addr_type : element -> int32
(** The 32-bit address-type tag: 1 for IP, 2 for IP+node, 3 for Sim,
    or the [Raw] tag. *)

val sim_host : element -> int option
(** The simulator host id, when the element is a [Sim] endpoint. *)

val targets : t -> Legion_util.Prng.t -> element list
(** Resolve the semantic into the concrete delivery list: all elements
    for [All]; one random element for [Any_random]; the first [k] for
    [First_k k]; [k] distinct random elements for [K_random k]; the
    elements in order for [Ordered_failover] and [Custom _]
    (interpretation of custom semantics beyond ordering is
    application-level). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp_element : Format.formatter -> element -> unit

val to_value : t -> Legion_wire.Value.t
val of_value : Legion_wire.Value.t -> (t, string) result
