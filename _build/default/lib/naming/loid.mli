(** Legion Object Identifiers (paper §3.2).

    Every Legion object is named by a LOID: a 64-bit {e Class Identifier},
    a 64-bit {e Class Specific} field, and a P-bit {e Public Key} (the
    paper leaves P open; here it is the length of an arbitrary byte
    string, possibly empty).

    By convention (paper §3.7), class objects have Class Specific = 0, and
    the class responsible for locating a non-class object is found by
    zeroing the Class Specific field of the instance's LOID. *)

type t

val make : ?public_key:string -> class_id:int64 -> class_specific:int64 -> unit -> t

val class_id : t -> int64
val class_specific : t -> int64
val public_key : t -> string

val is_class : t -> bool
(** True iff the Class Specific field is zero. *)

val responsible_class : t -> t
(** The LOID of the class responsible for locating this object: same
    Class Identifier, Class Specific zeroed, no public key (paper
    §4.1.3). [responsible_class l = l] when [is_class l] holds and [l]
    has no public key. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Renders as ["L<class>.<specific>"] (hex), with ["+key"] appended when
    a public key is present. *)

val to_string : t -> string

val to_value : t -> Legion_wire.Value.t
val of_value : Legion_wire.Value.t -> (t, string) result

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

module Table : sig
  (** Imperative hash table keyed by LOID. *)

  type loid := t
  type 'a t

  val create : unit -> 'a t
  val find : 'a t -> loid -> 'a option
  val mem : 'a t -> loid -> bool
  val set : 'a t -> loid -> 'a -> unit
  val remove : 'a t -> loid -> unit
  val length : 'a t -> int
  val iter : (loid -> 'a -> unit) -> 'a t -> unit
  val fold : (loid -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  val to_list : 'a t -> (loid * 'a) list
end
