module Value = Legion_wire.Value

type t = { class_id : int64; class_specific : int64; public_key : string }

let make ?(public_key = "") ~class_id ~class_specific () =
  { class_id; class_specific; public_key }

let class_id t = t.class_id
let class_specific t = t.class_specific
let public_key t = t.public_key
let is_class t = Int64.equal t.class_specific 0L

let responsible_class t =
  { class_id = t.class_id; class_specific = 0L; public_key = "" }

let equal a b =
  Int64.equal a.class_id b.class_id
  && Int64.equal a.class_specific b.class_specific
  && String.equal a.public_key b.public_key

let compare a b =
  let c = Int64.compare a.class_id b.class_id in
  if c <> 0 then c
  else
    let c = Int64.compare a.class_specific b.class_specific in
    if c <> 0 then c else String.compare a.public_key b.public_key

let hash t =
  Hashtbl.hash (t.class_id, t.class_specific, t.public_key)

let pp ppf t =
  if String.length t.public_key = 0 then
    Format.fprintf ppf "L%Lx.%Lx" t.class_id t.class_specific
  else Format.fprintf ppf "L%Lx.%Lx+key" t.class_id t.class_specific

let to_string t = Format.asprintf "%a" pp t

let to_value t =
  Value.Record
    [
      ("cid", Value.I64 t.class_id);
      ("spec", Value.I64 t.class_specific);
      ("key", Value.Blob t.public_key);
    ]

let of_value v =
  let ( let* ) r f = Result.bind r f in
  let err e = Format.asprintf "loid: %a" Value.pp_error e in
  let* cid = Result.map_error err (Result.bind (Value.field v "cid") Value.to_i64) in
  let* spec = Result.map_error err (Result.bind (Value.field v "spec") Value.to_i64) in
  let* key = Result.map_error err (Result.bind (Value.field v "key") Value.to_blob) in
  Ok { class_id = cid; class_specific = spec; public_key = key }

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Table = struct
  module H = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)

  type 'a t = 'a H.t

  let create () = H.create 64
  let find t k = H.find_opt t k
  let mem t k = H.mem t k
  let set t k v = H.replace t k v
  let remove t k = H.remove t k
  let length t = H.length t
  let iter f t = H.iter f t
  let fold f t init = H.fold f t init
  let to_list t = H.fold (fun k v acc -> (k, v) :: acc) t []
end
