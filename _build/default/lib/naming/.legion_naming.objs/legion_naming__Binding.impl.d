lib/naming/binding.ml: Address Float Format Legion_wire Loid Option Result
