lib/naming/binding.mli: Address Format Legion_wire Loid
