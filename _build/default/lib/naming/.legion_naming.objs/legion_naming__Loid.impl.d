lib/naming/loid.ml: Format Hashtbl Int64 Legion_wire Map Result Set String
