lib/naming/address.ml: Array Format Int32 Int64 Legion_util Legion_wire List Printf Result Stdlib String
