lib/naming/cache.mli: Binding Loid
