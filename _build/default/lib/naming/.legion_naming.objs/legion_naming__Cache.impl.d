lib/naming/cache.ml: Binding List Loid
