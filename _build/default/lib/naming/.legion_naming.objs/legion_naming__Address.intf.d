lib/naming/address.mli: Format Legion_util Legion_wire
