lib/naming/loid.mli: Format Legion_wire Map Set
