module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Binding = Legion_naming.Binding

type t =
  | Tunit
  | Tbool
  | Tint
  | Tfloat
  | Tstr
  | Tblob
  | Tloid
  | Tbinding
  | Tany
  | Tlist of t
  | Topt of t
  | Trecord of (string * t) list

let rec check ty (v : Value.t) =
  match (ty, v) with
  | Tany, _ -> true
  | Tunit, Value.Unit -> true
  | Tbool, Value.Bool _ -> true
  | Tint, (Value.Int _ | Value.I64 _) -> true
  | Tfloat, Value.Float _ -> true
  | Tstr, Value.Str _ -> true
  | Tblob, Value.Blob _ -> true
  | Tloid, v -> Result.is_ok (Loid.of_value v)
  | Tbinding, v -> Result.is_ok (Binding.of_value v)
  | Tlist ty, Value.List vs -> List.for_all (check ty) vs
  | Topt _, Value.List [] -> true
  | Topt ty, Value.List [ v ] -> check ty v
  | Trecord fields, Value.Record vs ->
      List.length fields = List.length vs
      && List.for_all
           (fun (name, fty) ->
             match List.assoc_opt name vs with
             | Some fv -> check fty fv
             | None -> false)
           fields
  | ( ( Tunit | Tbool | Tint | Tfloat | Tstr | Tblob | Tlist _ | Topt _
      | Trecord _ ),
      _ ) ->
      false

let rec equal a b =
  match (a, b) with
  | Tunit, Tunit | Tbool, Tbool | Tint, Tint | Tfloat, Tfloat | Tstr, Tstr
  | Tblob, Tblob | Tloid, Tloid | Tbinding, Tbinding | Tany, Tany ->
      true
  | Tlist x, Tlist y | Topt x, Topt y -> equal x y
  | Trecord x, Trecord y ->
      List.equal (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && equal t1 t2) x y
  | ( ( Tunit | Tbool | Tint | Tfloat | Tstr | Tblob | Tloid | Tbinding | Tany
      | Tlist _ | Topt _ | Trecord _ ),
      _ ) ->
      false

let rec pp ppf = function
  | Tunit -> Format.fprintf ppf "unit"
  | Tbool -> Format.fprintf ppf "bool"
  | Tint -> Format.fprintf ppf "int"
  | Tfloat -> Format.fprintf ppf "float"
  | Tstr -> Format.fprintf ppf "str"
  | Tblob -> Format.fprintf ppf "blob"
  | Tloid -> Format.fprintf ppf "loid"
  | Tbinding -> Format.fprintf ppf "binding"
  | Tany -> Format.fprintf ppf "any"
  | Tlist t -> Format.fprintf ppf "list<%a>" pp t
  | Topt t -> Format.fprintf ppf "opt<%a>" pp t
  | Trecord fields ->
      let pp_field ppf (n, t) = Format.fprintf ppf "%s: %a" n pp t in
      Format.fprintf ppf "record{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_field)
        fields

let to_string t = Format.asprintf "%a" pp t

let rec to_value = function
  | Tunit -> Value.Str "unit"
  | Tbool -> Value.Str "bool"
  | Tint -> Value.Str "int"
  | Tfloat -> Value.Str "float"
  | Tstr -> Value.Str "str"
  | Tblob -> Value.Str "blob"
  | Tloid -> Value.Str "loid"
  | Tbinding -> Value.Str "binding"
  | Tany -> Value.Str "any"
  | Tlist t -> Value.Record [ ("list", to_value t) ]
  | Topt t -> Value.Record [ ("opt", to_value t) ]
  | Trecord fields ->
      Value.Record
        [ ("rec", Value.Record (List.map (fun (n, t) -> (n, to_value t)) fields)) ]

let rec of_value (v : Value.t) =
  match v with
  | Value.Str "unit" -> Ok Tunit
  | Value.Str "bool" -> Ok Tbool
  | Value.Str "int" -> Ok Tint
  | Value.Str "float" -> Ok Tfloat
  | Value.Str "str" -> Ok Tstr
  | Value.Str "blob" -> Ok Tblob
  | Value.Str "loid" -> Ok Tloid
  | Value.Str "binding" -> Ok Tbinding
  | Value.Str "any" -> Ok Tany
  | Value.Record [ ("list", inner) ] -> Result.map (fun t -> Tlist t) (of_value inner)
  | Value.Record [ ("opt", inner) ] -> Result.map (fun t -> Topt t) (of_value inner)
  | Value.Record [ ("rec", Value.Record fields) ] ->
      let rec loop acc = function
        | [] -> Ok (Trecord (List.rev acc))
        | (n, fv) :: rest -> (
            match of_value fv with
            | Ok t -> loop ((n, t) :: acc) rest
            | Error _ as e -> e)
      in
      loop [] fields
  | _ -> Error "ty: unrecognised type encoding"
