(** Parser for the concrete IDL syntax.

    Grammar (comments are [// to end of line]):
    {v
    file       ::= interface*
    interface  ::= "interface" IDENT "{" method* "}" ";"?
    method     ::= IDENT "(" params? ")" (":" type)? ";"
    params     ::= param ("," param)*
    param      ::= IDENT ":" type
    type       ::= "unit" | "bool" | "int" | "float" | "str" | "blob"
                 | "loid" | "binding" | "any"
                 | "list" "<" type ">" | "opt" "<" type ">"
                 | "record" "{" (IDENT ":" type ",")* "}"
    v}
    A method without a result type returns [unit]. Parsing a printed
    {!Interface.pp} round-trips. *)

type error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit

val interface : string -> (Interface.t, error) result
(** Parse exactly one interface. *)

val file : string -> (Interface.t list, error) result
(** Parse a sequence of interfaces. *)

val ty : string -> (Ty.t, error) result
(** Parse a single type expression (for tests and tools). *)
