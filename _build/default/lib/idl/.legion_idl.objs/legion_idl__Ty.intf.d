lib/idl/ty.mli: Format Legion_wire
