lib/idl/interface.mli: Format Legion_wire Ty
