lib/idl/mpl.ml: Format Interface List Printf String Ty
