lib/idl/interface.ml: Format Legion_wire List Option Printf Result String Ty
