lib/idl/mpl.mli: Format Interface
