lib/idl/parser.mli: Format Interface Ty
