lib/idl/parser.ml: Format Interface List Printf String Ty
