(** The MPL front-end.

    The paper (§2, footnote) commits to "at least two different IDLs …
    the CORBA IDL Interface Definition Language, and the Mentat
    Programming Language (MPL)". {!Parser} is the CORBA-flavoured
    syntax; this module accepts MPL's C++-flavoured class declarations
    and produces the same {!Interface.t}:

    {v
    mentat class Counter {
      int Increment(int d);      // C++ parameter order: type name
      int Get();
      void Reset();
      sequence<string> Names(stateless int k);
    };
    v}

    Mapping: [void] → unit return; C++ type names ([int], [bool],
    [float]/[double], [string], [char*], [sequence<T>], [optional<T>],
    [loid], [binding], [any]) map onto {!Ty.t}. The [mentat], [regular],
    [sequential], [select] and [stateless] keywords — Mentat's
    concurrency annotations — are accepted and discarded: they direct
    Mentat's compiler, not the interface. Comments are [// …] or
    [/* … */]. *)

type error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit

val interface : string -> (Interface.t, error) result
(** Parse one [mentat class]. *)

val file : string -> (Interface.t list, error) result
(** Parse a sequence of [mentat class] declarations. *)
