module Value = Legion_wire.Value

type signature = { meth : string; params : (string * Ty.t) list; ret : Ty.t }
type t = { name : string; sigs : signature list }

let make ~name sigs =
  let names = List.map (fun s -> s.meth) sigs in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Interface.make: duplicate method names";
  { name; sigs }

let empty name = { name; sigs = [] }
let name t = t.name
let signatures t = t.sigs
let method_names t = List.map (fun s -> s.meth) t.sigs
let find t m = List.find_opt (fun s -> String.equal s.meth m) t.sigs
let mem t m = Option.is_some (find t m)

let add t s =
  let without = List.filter (fun s' -> not (String.equal s'.meth s.meth)) t.sigs in
  { t with sigs = without @ [ s ] }

let merge a b =
  let extra = List.filter (fun s -> not (mem a s.meth)) b.sigs in
  { a with sigs = a.sigs @ extra }

let check_call t ~meth ~args =
  match find t meth with
  | None -> Error (Printf.sprintf "method %s not in interface %s" meth t.name)
  | Some s ->
      let expected = List.length s.params and got = List.length args in
      if expected <> got then
        Error (Printf.sprintf "%s: expected %d arguments, got %d" meth expected got)
      else
        let rec loop params args =
          match (params, args) with
          | [], [] -> Ok ()
          | (pname, pty) :: params, arg :: args ->
              if Ty.check pty arg then loop params args
              else
                Error
                  (Printf.sprintf "%s: argument %s does not match type %s" meth
                     pname (Ty.to_string pty))
          | _ -> assert false
        in
        loop s.params args

let equal_signature a b =
  String.equal a.meth b.meth
  && List.equal
       (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && Ty.equal t1 t2)
       a.params b.params
  && Ty.equal a.ret b.ret

let equal a b =
  String.equal a.name b.name && List.equal equal_signature a.sigs b.sigs

let pp_signature ppf s =
  let pp_param ppf (n, t) = Format.fprintf ppf "%s: %a" n Ty.pp t in
  Format.fprintf ppf "%s(%a): %a;" s.meth
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_param)
    s.params Ty.pp s.ret

let pp ppf t =
  Format.fprintf ppf "@[<v 2>interface %s {@,%a@]@,};" t.name
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_signature)
    t.sigs

let signature_to_value s =
  Value.Record
    [
      ("m", Value.Str s.meth);
      ( "p",
        Value.List
          (List.map
             (fun (n, ty) -> Value.Record [ ("n", Value.Str n); ("t", Ty.to_value ty) ])
             s.params) );
      ("r", Ty.to_value s.ret);
    ]

let ( let* ) r f = Result.bind r f

let signature_of_value v =
  let err e = Format.asprintf "interface: %a" Value.pp_error e in
  let* m = Result.map_error err (Result.bind (Value.field v "m") Value.to_str) in
  let* params_v = Result.map_error err (Value.field v "p") in
  let* params =
    match params_v with
    | Value.List ps ->
        let rec loop acc = function
          | [] -> Ok (List.rev acc)
          | p :: rest ->
              let* n =
                Result.map_error err (Result.bind (Value.field p "n") Value.to_str)
              in
              let* tv = Result.map_error err (Value.field p "t") in
              let* ty = Ty.of_value tv in
              loop ((n, ty) :: acc) rest
        in
        loop [] ps
    | _ -> Error "interface: params not a list"
  in
  let* ret_v = Result.map_error err (Value.field v "r") in
  let* ret = Ty.of_value ret_v in
  Ok { meth = m; params; ret }

let to_value t =
  Value.Record
    [
      ("n", Value.Str t.name);
      ("s", Value.List (List.map signature_to_value t.sigs));
    ]

let of_value v =
  let err e = Format.asprintf "interface: %a" Value.pp_error e in
  let* n = Result.map_error err (Result.bind (Value.field v "n") Value.to_str) in
  let* sigs_v = Result.map_error err (Value.field v "s") in
  match sigs_v with
  | Value.List ss ->
      let rec loop acc = function
        | [] -> Ok { name = n; sigs = List.rev acc }
        | s :: rest ->
            let* sg = signature_of_value s in
            loop (sg :: acc) rest
      in
      loop [] ss
  | _ -> Error "interface: signatures not a list"
