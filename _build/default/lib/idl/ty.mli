(** IDL type expressions.

    The paper stipulates that "Legion class interfaces can be described
    in an Interface Description Language" (§2, with CORBA IDL and MPL as
    the intended concrete syntaxes). [Ty.t] is the type language of our
    IDL: it types {!Legion_wire.Value.t} data structurally. *)

type t =
  | Tunit
  | Tbool
  | Tint
  | Tfloat
  | Tstr
  | Tblob
  | Tloid  (** A LOID in its wire encoding. *)
  | Tbinding  (** A binding in its wire encoding. *)
  | Tany  (** Matches every value. *)
  | Tlist of t
  | Topt of t
  | Trecord of (string * t) list

val check : t -> Legion_wire.Value.t -> bool
(** Structural conformance. [Tloid]/[Tbinding] check decodability;
    [Trecord] requires exactly the named fields (in any order). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Concrete IDL syntax: [int], [list<int>], [opt<str>],
    [record{a: int, b: str}], … *)

val to_string : t -> string

val to_value : t -> Legion_wire.Value.t
val of_value : Legion_wire.Value.t -> (t, string) result
