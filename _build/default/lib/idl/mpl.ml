type error = { line : int; col : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.col e.message

type token =
  | Ident of string
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Langle
  | Rangle
  | Semi
  | Comma
  | Star
  | Eof

let token_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Langle -> "'<'"
  | Rangle -> "'>'"
  | Semi -> "';'"
  | Comma -> "','"
  | Star -> "'*'"
  | Eof -> "end of input"

type lexed = { tok : token; line : int; col : int }

exception Parse_error of error

let fail ~line ~col fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; col; message })) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let advance () =
    (if !i < n then
       if src.[!i] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr i
  in
  let emit tok = toks := { tok; line = !line; col = !col } :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance ()
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let closed = ref false in
      advance ();
      advance ();
      while !i < n && not !closed do
        if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then fail ~line:!line ~col:!col "unterminated comment"
    end
    else if is_ident_start c then begin
      let start = !i in
      let start_line = !line and start_col = !col in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      toks :=
        {
          tok = Ident (String.sub src start (!i - start));
          line = start_line;
          col = start_col;
        }
        :: !toks
    end
    else begin
      (match c with
      | '{' -> emit Lbrace
      | '}' -> emit Rbrace
      | '(' -> emit Lparen
      | ')' -> emit Rparen
      | '<' -> emit Langle
      | '>' -> emit Rangle
      | ';' -> emit Semi
      | ',' -> emit Comma
      | '*' -> emit Star
      | c -> fail ~line:!line ~col:!col "unexpected character %C" c);
      advance ()
    end
  done;
  toks := { tok = Eof; line = !line; col = !col } :: !toks;
  List.rev !toks

type state = { mutable toks : lexed list }

let peek st = match st.toks with [] -> assert false | t :: _ -> t

let next st =
  let t = peek st in
  (match st.toks with [] -> () | _ :: rest -> st.toks <- rest);
  t

let expect st tok =
  let t = next st in
  if t.tok <> tok then
    fail ~line:t.line ~col:t.col "expected %s, found %s" (token_name tok)
      (token_name t.tok)

let ident st =
  let t = next st in
  match t.tok with
  | Ident s -> s
  | other ->
      fail ~line:t.line ~col:t.col "expected identifier, found %s" (token_name other)

(* Mentat's concurrency qualifiers: meaningful to its compiler, not to
   the interface. *)
let qualifiers = [ "regular"; "sequential"; "select"; "stateless"; "persistent" ]

let skip_qualifiers st =
  let rec loop () =
    match (peek st).tok with
    | Ident q when List.mem q qualifiers ->
        ignore (next st);
        loop ()
    | _ -> ()
  in
  loop ()

(* C++-flavoured type expressions. "char *" and "string" both map to
   Tstr; "double"/"float" to Tfloat. *)
let rec parse_ty st : Ty.t =
  let t = next st in
  match t.tok with
  | Ident "void" -> Ty.Tunit
  | Ident "bool" -> Ty.Tbool
  | Ident ("int" | "long" | "short") -> Ty.Tint
  | Ident ("float" | "double") -> Ty.Tfloat
  | Ident "string" -> Ty.Tstr
  | Ident "char" ->
      expect st Star;
      Ty.Tstr
  | Ident ("blob" | "bytes") -> Ty.Tblob
  | Ident "loid" -> Ty.Tloid
  | Ident "binding" -> Ty.Tbinding
  | Ident "any" -> Ty.Tany
  | Ident "sequence" ->
      expect st Langle;
      let inner = parse_ty st in
      expect st Rangle;
      Ty.Tlist inner
  | Ident "optional" ->
      expect st Langle;
      let inner = parse_ty st in
      expect st Rangle;
      Ty.Topt inner
  | Ident other -> fail ~line:t.line ~col:t.col "unknown MPL type %S" other
  | other -> fail ~line:t.line ~col:t.col "expected a type, found %s" (token_name other)

let parse_params st =
  expect st Lparen;
  match (peek st).tok with
  | Rparen ->
      ignore (next st);
      []
  | _ ->
      let rec loop acc =
        skip_qualifiers st;
        let ty = parse_ty st in
        let name = ident st in
        let acc = (name, ty) :: acc in
        let t = next st in
        match t.tok with
        | Comma -> loop acc
        | Rparen -> List.rev acc
        | other ->
            fail ~line:t.line ~col:t.col "expected ',' or ')', found %s"
              (token_name other)
      in
      loop []

let parse_method st : Interface.signature =
  skip_qualifiers st;
  let ret = parse_ty st in
  let meth = ident st in
  let params = parse_params st in
  expect st Semi;
  { Interface.meth; params; ret }

let parse_class st =
  skip_qualifiers st;
  let t = next st in
  (match t.tok with
  | Ident "mentat" -> ()
  | other ->
      fail ~line:t.line ~col:t.col "expected 'mentat', found %s" (token_name other));
  let t2 = next st in
  (match t2.tok with
  | Ident "class" -> ()
  | other ->
      fail ~line:t2.line ~col:t2.col "expected 'class', found %s" (token_name other));
  let cname = ident st in
  expect st Lbrace;
  let sigs = ref [] in
  let rec loop () =
    match (peek st).tok with
    | Rbrace -> ignore (next st)
    | _ ->
        sigs := parse_method st :: !sigs;
        loop ()
  in
  loop ();
  (match (peek st).tok with Semi -> ignore (next st) | _ -> ());
  match Interface.make ~name:cname (List.rev !sigs) with
  | iface -> iface
  | exception Invalid_argument msg -> fail ~line:t.line ~col:t.col "%s" msg

let run f src =
  match f { toks = lex src } with
  | v -> Ok v
  | exception Parse_error e -> Error e

let interface src =
  run
    (fun st ->
      let iface = parse_class st in
      expect st Eof;
      iface)
    src

let file src =
  run
    (fun st ->
      let rec loop acc =
        match (peek st).tok with
        | Eof -> List.rev acc
        | _ -> loop (parse_class st :: acc)
      in
      loop [])
    src
