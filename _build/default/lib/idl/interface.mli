(** Method signatures and object interfaces.

    "Each method has a signature that describes the parameters and return
    value, if any, of the method. The complete set of method signatures
    for an object fully describes that object's interface, which is
    inherited from its class" (§2). *)

type signature = {
  meth : string;
  params : (string * Ty.t) list;
  ret : Ty.t;
}

type t
(** An interface: a named, ordered set of signatures with distinct
    method names. *)

val make : name:string -> signature list -> t
(** @raise Invalid_argument on duplicate method names. *)

val empty : string -> t
val name : t -> string
val signatures : t -> signature list
val method_names : t -> string list
val find : t -> string -> signature option
val mem : t -> string -> bool

val add : t -> signature -> t
(** Replaces an existing signature with the same method name. *)

val merge : t -> t -> t
(** [merge a b] is the multiple-inheritance composition: all of [a],
    plus those methods of [b] that [a] does not define — "B's member
    functions are added to C's interface" (§2.1.1), with the derived
    class's own definitions taking precedence. Keeps [a]'s name. *)

val check_call :
  t -> meth:string -> args:Legion_wire.Value.t list ->
  (unit, string) result
(** Arity and per-parameter type conformance for an invocation. Unknown
    methods are an error. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Renders in IDL concrete syntax (parseable by {!Parser.interface}). *)

val to_value : t -> Legion_wire.Value.t
val of_value : Legion_wire.Value.t -> (t, string) result
