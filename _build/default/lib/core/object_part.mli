(** The base implementation unit every Legion object carries
    ("legion.object").

    Provides the object-mandatory member functions of §2.1/§2.4 that are
    not state machinery: [MayI] (security check, §2.4), [Iam] (identity),
    [Ping], plus policy management. The part exposes its policy as the
    composite's guard, so every inbound method call is admission-checked
    — "every object provides certain security-related member functions,
    including MayI() and Iam()". *)

module Value := Legion_wire.Value
module Policy := Legion_sec.Policy

val unit_name : string
(** ["legion.object"], see {!Well_known.unit_object}. *)

val factory : Impl.factory
(** Fresh state: [Allow_all] policy, empty info string. *)

val state_value : ?info:string -> policy:Policy.t -> unit -> Value.t
(** Build an initial state for this unit, to place in an OPR's [states]
    — how [Create] installs a security policy on a new object. *)

val register : unit -> unit
(** Idempotently install {!factory} in the unit registry. *)

(** Methods provided: [MayI(meth: str): bool] — would this call's
    environment be admitted to [meth]?; [Iam(): loid]; [Ping(): unit];
    [GetInfo(): str]; [SetPolicy(policy: any): unit]; [GetPolicy(): any]. *)
