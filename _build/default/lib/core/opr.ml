module Address = Legion_naming.Address
module Value = Legion_wire.Value
module Codec = Legion_wire.Codec

type t = {
  kind : string;
  units : string list;
  states : (string * Value.t) list;
  binding_agent : Address.t option;
  cache_capacity : int option;
}

let make ?(states = []) ?binding_agent ?cache_capacity ~kind ~units () =
  { kind; units; states; binding_agent; cache_capacity }

let to_value t =
  Value.Record
    [
      ("kind", Value.Str t.kind);
      ("units", Value.List (List.map (fun u -> Value.Str u) t.units));
      ("states", Value.Record t.states);
      ( "ba",
        match t.binding_agent with
        | None -> Value.List []
        | Some a -> Value.List [ Address.to_value a ] );
      ( "cap",
        match t.cache_capacity with
        | None -> Value.List []
        | Some c -> Value.List [ Value.Int c ] );
    ]

let ( let* ) r f = Result.bind r f

let of_value v =
  let err e = Format.asprintf "opr: %a" Value.pp_error e in
  let* kind = Result.map_error err (Result.bind (Value.field v "kind") Value.to_str) in
  let* units =
    Result.map_error err
      (Result.bind (Value.field v "units") (Value.to_list Value.to_str))
  in
  let* states =
    match Value.field v "states" with
    | Ok (Value.Record fields) -> Ok fields
    | Ok _ -> Error "opr: states not a record"
    | Error e -> Error (err e)
  in
  let* ba =
    match Value.field v "ba" with
    | Ok (Value.List []) -> Ok None
    | Ok (Value.List [ a ]) -> Result.map (fun a -> Some a) (Address.of_value a)
    | Ok _ -> Error "opr: bad binding agent field"
    | Error e -> Error (err e)
  in
  let* cap =
    match Value.field v "cap" with
    | Ok (Value.List []) -> Ok None
    | Ok (Value.List [ Value.Int c ]) -> Ok (Some c)
    | Ok _ -> Error "opr: bad cache capacity field"
    | Error e -> Error (err e)
  in
  Ok { kind; units; states; binding_agent = ba; cache_capacity = cap }

let to_blob t = Codec.encode (to_value t)

let of_blob blob =
  let* v = Codec.decode blob in
  of_value v

let size_bytes t = Value.size_bytes (to_value t)

let pp ppf t =
  Format.fprintf ppf "opr{kind=%s; units=[%s]; %d bytes}" t.kind
    (String.concat ";" t.units) (size_bytes t)
