lib/core/typecheck_part.mli: Impl Legion_idl Legion_wire
