lib/core/class_part.mli: Impl Legion_idl Legion_naming Legion_wire
