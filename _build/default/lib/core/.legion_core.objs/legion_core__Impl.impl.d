lib/core/impl.ml: Hashtbl Legion_rt Legion_sec Legion_wire List Opr Printf String
