lib/core/class_part.ml: Convert Format Impl Int64 Legion_idl Legion_naming Legion_rt Legion_sec Legion_wire List Opr Option Printf Result Stdlib Typecheck_part Well_known
