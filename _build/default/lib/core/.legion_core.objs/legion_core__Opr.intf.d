lib/core/opr.mli: Format Legion_naming Legion_wire
