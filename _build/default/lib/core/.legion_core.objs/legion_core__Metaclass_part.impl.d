lib/core/metaclass_part.ml: Convert Format Impl Int64 Legion_naming Legion_rt Legion_wire List Option Result Well_known
