lib/core/convert.mli: Legion_naming Legion_wire
