lib/core/typecheck_part.ml: Impl Legion_idl Legion_rt Legion_sec Legion_wire List
