lib/core/well_known.ml: Legion_naming
