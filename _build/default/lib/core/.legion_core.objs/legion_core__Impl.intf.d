lib/core/impl.mli: Legion_naming Legion_net Legion_rt Legion_sec Legion_wire Opr
