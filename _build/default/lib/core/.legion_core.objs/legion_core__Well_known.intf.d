lib/core/well_known.mli: Legion_naming
