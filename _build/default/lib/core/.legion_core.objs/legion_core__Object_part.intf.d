lib/core/object_part.mli: Impl Legion_sec Legion_wire
