lib/core/object_part.ml: Format Impl Legion_naming Legion_rt Legion_sec Legion_wire Result Well_known
