lib/core/opr.ml: Format Legion_naming Legion_wire List Result String
