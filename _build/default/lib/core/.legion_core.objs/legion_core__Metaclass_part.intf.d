lib/core/metaclass_part.mli: Impl
