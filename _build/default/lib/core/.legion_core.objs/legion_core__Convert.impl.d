lib/core/convert.ml: Format Legion_naming Legion_wire List Printf Result
