module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Policy = Legion_sec.Policy
module Runtime = Legion_rt.Runtime

let unit_name = Well_known.unit_object

type state = { mutable policy : Policy.t; mutable info : string }

let state_value ?(info = "") ~policy () =
  Value.Record [ ("policy", Policy.to_value policy); ("info", Value.Str info) ]

let factory (ctx : Runtime.ctx) : Impl.part =
  let st = { policy = Policy.Allow_all; info = "" } in
  let self_loid = Runtime.proc_loid ctx.Runtime.self in
  let may_i _ctx args env k =
    match args with
    | [ Value.Str meth ] ->
        (match Policy.check st.policy ~meth ~env with
        | Policy.Allow -> k (Ok (Value.Bool true))
        | Policy.Deny _ -> k (Ok (Value.Bool false)))
    | _ -> Impl.bad_args k "MayI expects one method-name argument"
  in
  let iam _ctx args _env k =
    match args with
    | [] -> k (Ok (Loid.to_value self_loid))
    | _ -> Impl.bad_args k "Iam takes no arguments"
  in
  let ping _ctx args _env k =
    match args with
    | [] -> k Impl.ok_unit
    | _ -> Impl.bad_args k "Ping takes no arguments"
  in
  let get_info _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Str st.info))
    | _ -> Impl.bad_args k "GetInfo takes no arguments"
  in
  let set_policy _ctx args _env k =
    match args with
    | [ pv ] -> (
        match Policy.of_value pv with
        | Ok p ->
            st.policy <- p;
            k Impl.ok_unit
        | Error msg -> Impl.bad_args k msg)
    | _ -> Impl.bad_args k "SetPolicy expects one policy argument"
  in
  let get_policy _ctx args _env k =
    match args with
    | [] -> k (Ok (Policy.to_value st.policy))
    | _ -> Impl.bad_args k "GetPolicy takes no arguments"
  in
  let save () = state_value ~info:st.info ~policy:st.policy () in
  let restore v =
    let ( let* ) r f = Result.bind r f in
    let err e = Format.asprintf "object state: %a" Value.pp_error e in
    let* pv = Result.map_error err (Value.field v "policy") in
    let* policy = Policy.of_value pv in
    let* info = Result.map_error err (Result.bind (Value.field v "info") Value.to_str) in
    st.policy <- policy;
    st.info <- info;
    Ok ()
  in
  Impl.part
    ~methods:
      [
        ("MayI", may_i);
        ("Iam", iam);
        ("Ping", ping);
        ("GetInfo", get_info);
        ("SetPolicy", set_policy);
        ("GetPolicy", get_policy);
      ]
    ~save ~restore
    ~guard:(fun ~meth ~args:_ ~env -> Policy.check st.policy ~meth ~env)
    unit_name

let register () = Impl.register unit_name factory
