module Loid = Legion_naming.Loid

let legion_object_cid = 1L
let legion_class_cid = 2L
let legion_host_cid = 3L
let legion_magistrate_cid = 4L
let legion_binding_agent_cid = 5L
let first_dynamic_class_id = 16L

let class_loid cid = Loid.make ~class_id:cid ~class_specific:0L ()

let legion_object = class_loid legion_object_cid
let legion_class = class_loid legion_class_cid
let legion_host = class_loid legion_host_cid
let legion_magistrate = class_loid legion_magistrate_cid
let legion_binding_agent = class_loid legion_binding_agent_cid

let core_classes =
  [ legion_object; legion_class; legion_host; legion_magistrate; legion_binding_agent ]

let kind_class = "class"
let kind_binding_agent = "binding_agent"
let kind_magistrate = "magistrate"
let kind_host = "host"
let kind_app = "app"
let kind_client = "client"
let kind_sched = "sched"
let kind_context = "context"

let unit_object = "legion.object"
let unit_class = "legion.class"
let unit_metaclass = "legion.metaclass"
