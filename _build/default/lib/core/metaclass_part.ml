module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module C = Convert

let unit_name = Well_known.unit_metaclass

type state = {
  mutable next_class_id : int64;
  mutable pairs : (Loid.t * Loid.t) list;  (* (child, creator) *)
}

let seeded_pairs () =
  List.map (fun c -> (c, Well_known.legion_class)) Well_known.core_classes

let factory (_ctx : Runtime.ctx) : Impl.part =
  let st =
    { next_class_id = Well_known.first_dynamic_class_id; pairs = seeded_pairs () }
  in
  let find_creator child =
    List.find_opt (fun (c, _) -> Loid.equal c child) st.pairs |> Option.map snd
  in
  let new_class_id _ctx args _env k =
    match args with
    | [ creator_v; Value.Str _name ] -> (
        match C.loid_arg creator_v with
        | Error msg -> Impl.bad_args k msg
        | Ok creator ->
            let cid = st.next_class_id in
            st.next_class_id <- Int64.add cid 1L;
            let child = Loid.make ~class_id:cid ~class_specific:0L () in
            st.pairs <- (child, creator) :: st.pairs;
            k (Ok (Value.I64 cid)))
    | _ -> Impl.bad_args k "NewClassId expects (creator: loid, name: str)"
  in
  let locate_class _ctx args _env k =
    match args with
    | [ cls_v ] -> (
        match C.loid_arg cls_v with
        | Error msg -> Impl.bad_args k msg
        | Ok cls -> (
            match find_creator cls with
            | Some creator ->
                k (Ok (Value.Record [ ("creator", Loid.to_value creator) ]))
            | None ->
                k
                  (Error
                     (Err.Not_bound
                        (Format.asprintf "no responsibility pair for %a" Loid.pp cls)))))
    | _ -> Impl.bad_args k "LocateClass expects one class loid"
  in
  let register_pair _ctx args _env k =
    match args with
    | [ creator_v; child_v ] -> (
        let decoded =
          let ( let* ) r f = Result.bind r f in
          let* creator = C.loid_arg creator_v in
          let* child = C.loid_arg child_v in
          Ok (creator, child)
        in
        match decoded with
        | Error msg -> Impl.bad_args k msg
        | Ok (creator, child) ->
            st.pairs <-
              (child, creator)
              :: List.filter (fun (c, _) -> not (Loid.equal c child)) st.pairs;
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "RegisterPair expects (creator, child)"
  in
  let save () =
    Value.Record
      [
        ("next", Value.I64 st.next_class_id);
        ( "pairs",
          Value.List
            (List.map
               (fun (c, p) ->
                 Value.Record [ ("c", Loid.to_value c); ("p", Loid.to_value p) ])
               st.pairs) );
      ]
  in
  let restore v =
    let ( let* ) r f = Result.bind r f in
    let* next = C.i64_field v "next" in
    let* pairs_v = C.field v "pairs" in
    let* pairs =
      match pairs_v with
      | Value.List vs ->
          let rec loop acc = function
            | [] -> Ok (List.rev acc)
            | x :: rest ->
                let* c = C.loid_field x "c" in
                let* p = C.loid_field x "p" in
                loop ((c, p) :: acc) rest
          in
          loop [] vs
      | _ -> Error "metaclass state: pairs not a list"
    in
    st.next_class_id <- next;
    st.pairs <- pairs;
    Ok ()
  in
  Impl.part
    ~methods:
      [
        ("NewClassId", new_class_id);
        ("LocateClass", locate_class);
        ("RegisterPair", register_pair);
      ]
    ~save ~restore unit_name

let register () = Impl.register unit_name factory
