(** Decoding helpers shared by the core implementation units.

    All argument records use the same conventions: optional fields are
    encoded as [List []] / [List [x]]; LOIDs, addresses and bindings use
    their canonical wire encodings. Every helper returns a [result] with
    a human-readable message suitable for a [Bad_args] reply. *)

module Value := Legion_wire.Value
module Loid := Legion_naming.Loid
module Address := Legion_naming.Address
module Binding := Legion_naming.Binding

val field : Value.t -> string -> (Value.t, string) result
val str_field : Value.t -> string -> (string, string) result
val int_field : Value.t -> string -> (int, string) result
val i64_field : Value.t -> string -> (int64, string) result

val bool_field : ?default:bool -> Value.t -> string -> (bool, string) result
(** With [default], a missing field decodes to it. *)

val loid_field : Value.t -> string -> (Loid.t, string) result
val str_list_field : ?default:string list -> Value.t -> string -> (string list, string) result
val loid_list_field : ?default:Loid.t list -> Value.t -> string -> (Loid.t list, string) result

val opt_field :
  Value.t -> string -> (Value.t -> ('a, string) result) -> ('a option, string) result
(** Optional field: absent, or [List []], decode to [None]. *)

val opt_loid_field : Value.t -> string -> (Loid.t option, string) result
val opt_str_field : Value.t -> string -> (string option, string) result
val opt_int_field : Value.t -> string -> (int option, string) result
val opt_address_field : Value.t -> string -> (Address.t option, string) result

val vopt : ('a -> Value.t) -> 'a option -> Value.t
(** Encode an option as [List []] / [List [x]]. *)

val vloids : Loid.t list -> Value.t
val vstrs : string list -> Value.t

val loid_arg : Value.t -> (Loid.t, string) result
val binding_arg : Value.t -> (Binding.t, string) result
