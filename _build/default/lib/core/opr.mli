(** Object Persistent Representations (paper §3.1.1).

    "An Object Persistent Representation is a sequential set of bytes
    that represents an Inert object, and that can be used by a
    Magistrate to activate the object." The creation information "may
    take the form of an executable program, the name of an executable, a
    list of steps to follow" (§4.2); ours is the second form — the
    names of implementation units registered in {!Impl}, paired with the
    saved state of each unit (the output of [SaveState]). *)

module Address := Legion_naming.Address
module Value := Legion_wire.Value

type t = {
  kind : string;  (** Counter group of the object (see {!Well_known}). *)
  units : string list;
      (** Implementation-unit names, dispatch-precedence order. *)
  states : (string * Value.t) list;
      (** Per-unit saved state, keyed by unit name. Units without an
          entry start from their factory defaults. *)
  binding_agent : Address.t option;
      (** The Object Address of the object's Binding Agent — "the
          persistent state of each Legion object contains the Object
          Address of its Binding Agent" (§3.6). *)
  cache_capacity : int option;
      (** Bound on the comm-layer binding cache. *)
}

val make :
  ?states:(string * Value.t) list ->
  ?binding_agent:Address.t ->
  ?cache_capacity:int ->
  kind:string ->
  units:string list ->
  unit ->
  t

val to_value : t -> Value.t
val of_value : Value.t -> (t, string) result

val to_blob : t -> string
(** The "sequential set of bytes" stored on a Jurisdiction's disks and
    shipped between Magistrates by [Copy]/[Move]. *)

val of_blob : string -> (t, string) result

val size_bytes : t -> int
val pp : Format.formatter -> t -> unit
