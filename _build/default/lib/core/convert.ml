module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Binding = Legion_naming.Binding

let ( let* ) r f = Result.bind r f

let verr e = Format.asprintf "%a" Value.pp_error e

let field v name = Result.map_error verr (Value.field v name)
let str_field v name = Result.map_error verr (Result.bind (Value.field v name) Value.to_str)
let int_field v name = Result.map_error verr (Result.bind (Value.field v name) Value.to_int)
let i64_field v name = Result.map_error verr (Result.bind (Value.field v name) Value.to_i64)

let bool_field ?default v name =
  match (Value.field v name, default) with
  | Ok b, _ -> Result.map_error verr (Value.to_bool b)
  | Error _, Some d -> Ok d
  | Error e, None -> Error (verr e)

let loid_field v name =
  let* fv = field v name in
  Loid.of_value fv

let str_list_field ?default v name =
  match (Value.field v name, default) with
  | Ok fv, _ -> Result.map_error verr (Value.to_list Value.to_str fv)
  | Error _, Some d -> Ok d
  | Error e, None -> Error (verr e)

let loid_list_field ?default v name =
  match (Value.field v name, default) with
  | Ok (Value.List vs), _ ->
      let rec loop acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest ->
            let* l = Loid.of_value x in
            loop (l :: acc) rest
      in
      loop [] vs
  | Ok _, _ -> Error (Printf.sprintf "field %s: not a list" name)
  | Error _, Some d -> Ok d
  | Error e, None -> Error (verr e)

let opt_field v name decode =
  match Value.field v name with
  | Error _ -> Ok None
  | Ok (Value.List []) -> Ok None
  | Ok (Value.List [ x ]) -> Result.map (fun d -> Some d) (decode x)
  | Ok _ -> Error (Printf.sprintf "field %s: not an option" name)

let opt_loid_field v name = opt_field v name Loid.of_value
let opt_str_field v name =
  opt_field v name (fun x -> Result.map_error verr (Value.to_str x))

let opt_int_field v name =
  opt_field v name (fun x -> Result.map_error verr (Value.to_int x))

let opt_address_field v name = opt_field v name Address.of_value

let vopt f = function None -> Value.List [] | Some x -> Value.List [ f x ]
let vloids loids = Value.List (List.map Loid.to_value loids)
let vstrs strs = Value.List (List.map (fun s -> Value.Str s) strs)

let loid_arg v = Loid.of_value v
let binding_arg v = Binding.of_value v
