module Value = Legion_wire.Value
module Interface = Legion_idl.Interface
module Policy = Legion_sec.Policy
module Runtime = Legion_rt.Runtime

let unit_name = "legion.typecheck"

let state_value iface = Interface.to_value iface

(* Methods the composite itself implements; the interface need not (and
   does not) declare them. *)
let always_admitted = [ "SaveState"; "RestoreState"; "GetMethodNames" ]

let factory (_ctx : Runtime.ctx) : Impl.part =
  let iface = ref (Interface.empty "unseeded") in
  let guard ~meth ~args ~env:_ =
    if List.mem meth always_admitted then Policy.Allow
    else
      match Interface.check_call !iface ~meth ~args with
      | Ok () -> Policy.Allow
      | Error msg -> Policy.Deny ("interface: " ^ msg)
  in
  let get_checked _ctx args _env k =
    match args with
    | [] -> k (Ok (Interface.to_value !iface))
    | _ -> Impl.bad_args k "GetCheckedInterface takes no arguments"
  in
  Impl.part
    ~methods:[ ("GetCheckedInterface", get_checked) ]
    ~save:(fun () -> Interface.to_value !iface)
    ~restore:(fun v ->
      match Interface.of_value v with
      | Ok i ->
          iface := i;
          Ok ()
      | Error msg -> Error msg)
    ~guard unit_name

let register () = Impl.register unit_name factory
