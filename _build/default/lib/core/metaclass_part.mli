(** LegionClass's authority unit ("legion.metaclass").

    "LegionClass is responsible for handing out unique Class Identifiers
    to each new class" (§3.2) and "can be the authority for locating
    class objects" (§4.1.3). Rather than holding every class binding
    itself, it maintains {e responsibility pairs} <X, Y> — X is
    responsible for locating Y — recorded whenever a creating class
    requests a Class Identifier for a new subclass.

    Methods: [NewClassId(creator: loid, name: str): int64];
    [LocateClass(cls: loid): record{creator: loid}];
    [RegisterPair(creator: loid, child: loid): unit] (bootstrap seeding
    and administrative repair). *)

val unit_name : string

val factory : Impl.factory
(** Fresh state: next Class Identifier =
    {!Well_known.first_dynamic_class_id}; pairs seeded with
    <LegionClass, c> for every core class c, so lookups terminate at
    LegionClass (§4.1.3). *)

val register : unit -> unit
