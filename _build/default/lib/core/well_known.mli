(** Well-known names of the core Legion objects.

    "Legion defines the interface and functionality of several core
    Abstract class objects" (§2.1.3): LegionObject, LegionClass,
    LegionHost, LegionMagistrate and LegionBindingAgent. They are
    created exactly once, at bootstrap (§4.2.1), with fixed Class
    Identifiers; every other Class Identifier is handed out by
    LegionClass at run time, starting from {!first_dynamic_class_id}. *)

module Loid := Legion_naming.Loid

val legion_object_cid : int64
val legion_class_cid : int64
val legion_host_cid : int64
val legion_magistrate_cid : int64
val legion_binding_agent_cid : int64

val first_dynamic_class_id : int64
(** Class Identifiers below this are reserved for the core. *)

val legion_object : Loid.t
val legion_class : Loid.t
val legion_host : Loid.t
val legion_magistrate : Loid.t
val legion_binding_agent : Loid.t

val core_classes : Loid.t list
(** The five, in definition order. *)

(** {1 Counter groups}

    The [kind] strings used to group per-object request counters; the
    §5 experiments aggregate by these. *)

val kind_class : string
val kind_binding_agent : string
val kind_magistrate : string
val kind_host : string
val kind_app : string
val kind_client : string
val kind_sched : string
val kind_context : string

(** {1 Implementation-unit names} *)

val unit_object : string
(** The base unit every object carries ("legion.object"). *)

val unit_class : string
(** The class-machinery unit ("legion.class"). *)

val unit_metaclass : string
(** LegionClass's extra unit ("legion.metaclass"). *)
