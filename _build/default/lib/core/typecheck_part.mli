(** IDL enforcement at dispatch ("legion.typecheck").

    The paper requires every class interface to be describable in an
    IDL (§2); this optional unit makes the description {e binding}: it
    guards the composite so that a call to a method outside the
    interface, or with the wrong arity or argument types, is refused
    before any handler runs. The state-machinery built-ins
    ([SaveState], [RestoreState], [GetMethodNames]) and the unguarded
    probes ([MayI]/[Iam]/[Ping]) are always admitted.

    A class created with [typed: true] in its Derive spec includes this
    unit in its instances automatically, seeded with the class's merged
    interface — see {!Class_part}. *)

module Value := Legion_wire.Value
module Interface := Legion_idl.Interface

val unit_name : string
(** ["legion.typecheck"]. *)

val state_value : Interface.t -> Value.t
(** The unit's state is the interface to enforce. *)

val factory : Impl.factory
(** Fresh state: an empty interface — everything outside the built-ins
    refused — so an unseeded typecheck unit fails closed. *)

val register : unit -> unit
