(* A single persistent name space over distributed file objects.

   The paper's motivation: "A single persistent name space unites the
   objects in the Legion system. This makes remote files and data more
   easily accessible, thereby facilitating the construction of
   applications that span multiple sites."

   This example builds exactly that: file objects scattered over three
   Jurisdictions, named through nested Context objects as paths like
   /projects/climate/results.dat — the run never mentions a host or an
   address. Files are Legion objects, so they deactivate to disk when
   idle, migrate with their Jurisdiction's policies, and reactivate on
   reference.

   Run with: dune exec examples/distributed_files.exe *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Impl = Legion_core.Impl
module Well_known = Legion_core.Well_known
module Context_part = Legion_ctx.Context_part
module Runtime = Legion_rt.Runtime
module Network = Legion_net.Network
module System = Legion.System
module Api = Legion.Api

(* A file object: versioned contents plus append. *)
let file_unit = "example.file"

let file_factory (_ctx : Runtime.ctx) : Impl.part =
  let contents = ref "" and version = ref 0 in
  let read _ctx args _env k =
    match args with
    | [] ->
        k
          (Ok
             (Value.Record
                [ ("data", Value.Str !contents); ("version", Value.Int !version) ]))
    | _ -> Impl.bad_args k "Read takes no arguments"
  in
  let write _ctx args _env k =
    match args with
    | [ Value.Str s ] ->
        contents := s;
        incr version;
        k (Ok (Value.Int !version))
    | _ -> Impl.bad_args k "Write expects one string"
  in
  let append _ctx args _env k =
    match args with
    | [ Value.Str s ] ->
        contents := !contents ^ s;
        incr version;
        k (Ok (Value.Int !version))
    | _ -> Impl.bad_args k "Append expects one string"
  in
  let size _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int (String.length !contents)))
    | _ -> Impl.bad_args k "Size takes no arguments"
  in
  Impl.part
    ~methods:[ ("Read", read); ("Write", write); ("Append", append); ("Size", size) ]
    ~save:(fun () ->
      Value.Record [ ("c", Value.Str !contents); ("v", Value.Int !version) ])
    ~restore:(fun v ->
      match (Value.field v "c", Value.field v "v") with
      | Ok (Value.Str c), Ok (Value.Int ver) ->
          contents := c;
          version := ver;
          Ok ()
      | _ -> Error "file state malformed")
    file_unit

let () =
  Impl.register file_unit file_factory;
  let sys =
    System.boot ~seed:19L ~sites:[ ("uva", 3); ("ncsa", 3); ("sdsc", 3) ] ()
  in
  let ctx = System.client sys () in
  Format.printf "three sites, one name space@.";

  let file_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"LegionFile"
      ~units:[ file_unit ]
      ~idl:
        "interface LegionFile { Read(): any; Write(s: str): int; Append(s: str): \
         int; Size(): int; }"
      ~typed:true ()
  in
  let ctx_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Context"
      ~units:[ Context_part.unit_name ]
      ~kind:Well_known.kind_context ()
  in

  (* Build the name space: / -> projects -> {climate, genome}. Context
     objects are ordinary Legion objects; these land wherever the class
     places them. *)
  let root = Api.create_object_exn sys ctx ~cls:ctx_cls ~eager:true () in
  let mkdir parent name =
    let dir = Api.create_object_exn sys ctx ~cls:ctx_cls ~eager:true () in
    ignore
      (Api.call_exn sys ctx ~dst:parent ~meth:"Bind"
         ~args:[ Value.Str name; Loid.to_value dir ]);
    dir
  in
  let projects = mkdir root "projects" in
  let climate = mkdir projects "climate" in
  let genome = mkdir projects "genome" in

  (* Scatter files: each project's data in a different Jurisdiction. *)
  let touch dir name ~site =
    let mag = (System.site sys site).System.magistrate in
    let f = Api.create_object_exn sys ctx ~cls:file_cls ~magistrate:mag () in
    ignore
      (Api.call_exn sys ctx ~dst:dir ~meth:"Bind"
         ~args:[ Value.Str name; Loid.to_value f ]);
    f
  in
  let _results = touch climate "results.dat" ~site:1 in
  let _model = touch climate "model.cfg" ~site:1 in
  let _reads = touch genome "reads.fa" ~site:2 in

  (* Path-based access: resolve, then invoke. The caller names files by
     path alone. *)
  let resolve path =
    match Api.sync sys (fun k -> Context_part.resolve_path ctx ~root path k) with
    | Ok loid -> loid
    | Error e -> failwith (Legion_rt.Err.to_string e)
  in
  let write path data =
    let f = resolve path in
    ignore (Api.call_exn sys ctx ~dst:f ~meth:"Write" ~args:[ Value.Str data ])
  in
  let read path =
    let f = resolve path in
    match Api.call_exn sys ctx ~dst:f ~meth:"Read" ~args:[] with
    | Value.Record fields -> (
        match (List.assoc_opt "data" fields, List.assoc_opt "version" fields) with
        | Some (Value.Str d), Some (Value.Int v) -> (d, v)
        | _ -> failwith "bad read reply")
    | _ -> failwith "bad read reply"
  in

  write "projects/climate/results.dat" "t=0 280K\n";
  write "projects/climate/model.cfg" "resolution=2deg\n";
  write "projects/genome/reads.fa" ">read1\nACGT\n";

  List.iter
    (fun path ->
      let data, version = read path in
      let loid = resolve path in
      let where =
        match Runtime.find_proc (System.rt sys) loid with
        | Some p -> Network.host_name (System.net sys) (Runtime.proc_host p)
        | None -> "inert"
      in
      Format.printf "/%s (v%d, on %s): %S@." path version where data)
    [ "projects/climate/results.dat"; "projects/climate/model.cfg";
      "projects/genome/reads.fa" ];

  (* Appends through the same paths work across sites transparently. *)
  ignore
    (Api.call_exn sys ctx
       ~dst:(resolve "projects/climate/results.dat")
       ~meth:"Append" ~args:[ Value.Str "t=1 281K\n" ]);
  let data, version = read "projects/climate/results.dat" in
  Format.printf "after append: v%d, %d bytes@." version (String.length data);

  (* Files are objects: idle ones can be deactivated to their
     Jurisdiction's disks and come back on reference, contents intact. *)
  let f = resolve "projects/genome/reads.fa" in
  let holder =
    List.find_opt
      (fun m ->
        match Api.call sys ctx ~dst:m ~meth:"ListObjects" ~args:[] with
        | Ok (Value.List vs) ->
            List.exists
              (fun v -> match Loid.of_value v with Ok l -> Loid.equal l f | _ -> false)
              vs
        | _ -> false)
      (System.magistrates sys)
  in
  (match holder with
  | Some m ->
      ignore (Api.call sys ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value f ]);
      Format.printf "reads.fa deactivated to disk...@."
  | None -> ());
  let data, _ = read "projects/genome/reads.fa" in
  Format.printf "...and read back through its path: %S@." data;

  (* The typed class refuses ill-typed writes before they reach data. *)
  (match
     Api.call sys ctx
       ~dst:(resolve "projects/climate/model.cfg")
       ~meth:"Write" ~args:[ Value.Int 42 ]
   with
  | Error e -> Format.printf "ill-typed Write refused: %s@." (Legion_rt.Err.to_string e)
  | Ok _ -> Format.printf "BUG: ill-typed write accepted@.");

  Format.printf "done in %.3f simulated seconds@." (System.now sys)
