(* A shared workspace over the standard object library.

   The paper's opening promise is "shared object and shared name
   spaces" for teams that span organizations. This example builds a
   small collaborative pipeline from stock parts — no new units are
   defined at all:

   - a KV store holds job metadata,
   - a queue distributes work items between two sites,
   - a barrier synchronizes the workers' phases,
   - a file collects the report,
   - a context names everything: /ws/{jobs,work,gate,report}.

   Run with: dune exec examples/shared_workspace.exe *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Runtime = Legion_rt.Runtime
module Well_known = Legion_core.Well_known
module Context_part = Legion_ctx.Context_part
module Std = Legion_objects.Std_parts
module System = Legion.System
module Api = Legion.Api

let () =
  Std.register ();
  let sys = System.boot ~seed:31L ~sites:[ ("labA", 3); ("labB", 3) ] () in
  let alice = System.client sys ~site:0 () in
  let bob = System.client sys ~site:1 () in

  (* Classes for the stock parts — typed, so malformed calls bounce. *)
  let derive name unit_ idl =
    Api.derive_class_exn sys alice ~parent:Well_known.legion_object ~name
      ~units:[ unit_ ] ~idl ~typed:true ()
  in
  let kv_cls = derive "WsKv" Std.kv_unit Std.kv_idl in
  let queue_cls = derive "WsQueue" Std.queue_unit Std.queue_idl in
  let barrier_cls = derive "WsBarrier" Std.barrier_unit Std.barrier_idl in
  let file_cls = derive "WsFile" Std.file_unit Std.file_idl in
  let ctx_cls =
    Api.derive_class_exn sys alice ~parent:Well_known.legion_object ~name:"WsCtx"
      ~units:[ Context_part.unit_name ] ~kind:Well_known.kind_context ()
  in

  (* The workspace, named in a context rooted at /ws. *)
  let root = Api.create_object_exn sys alice ~cls:ctx_cls ~eager:true () in
  let jobs = Api.create_object_exn sys alice ~cls:kv_cls ~eager:true () in
  let work = Api.create_object_exn sys alice ~cls:queue_cls ~eager:true () in
  let gate = Api.create_object_exn sys alice ~cls:barrier_cls ~eager:true () in
  let report = Api.create_object_exn sys alice ~cls:file_cls ~eager:true () in
  List.iter
    (fun (name, obj) ->
      ignore
        (Api.call_exn sys alice ~dst:root ~meth:"Bind"
           ~args:[ Value.Str name; Loid.to_value obj ]))
    [ ("jobs", jobs); ("work", work); ("gate", gate); ("report", report) ];
  Format.printf "workspace bound under /ws: jobs, work, gate, report@.";

  (* Bob finds everything by name — he never saw the LOIDs. *)
  let resolve who path =
    match Api.sync sys (fun k -> Context_part.resolve_path who ~root path k) with
    | Ok l -> l
    | Error e -> failwith (Legion_rt.Err.to_string e)
  in
  let bob_work = resolve bob "work" in
  let bob_jobs = resolve bob "jobs" in
  let bob_gate = resolve bob "gate" in
  let bob_report = resolve bob "report" in

  (* Alice enqueues work and records metadata. *)
  ignore
    (Api.call_exn sys alice ~dst:jobs ~meth:"Put"
       ~args:[ Value.Str "owner"; Value.Str "alice@labA" ]);
  List.iter
    (fun item ->
      ignore (Api.call_exn sys alice ~dst:work ~meth:"Push" ~args:[ Value.Str item ]))
    [ "sample-001"; "sample-002"; "sample-003"; "sample-004" ];
  Format.printf "alice queued 4 samples (owner: %s)@."
    (match Api.call_exn sys bob ~dst:bob_jobs ~meth:"GetKey" ~args:[ Value.Str "owner" ] with
    | Value.Str s -> s
    | _ -> "?");

  (* Both sides drain the queue and append findings to the report. *)
  ignore (Api.call_exn sys alice ~dst:gate ~meth:"Configure" ~args:[ Value.Int 2 ]);
  let process who label q r =
    let rec loop n =
      match Api.call sys who ~dst:q ~meth:"Pop" ~args:[] with
      | Ok (Value.Str item) ->
          ignore
            (Api.call_exn sys who ~dst:r ~meth:"Append"
               ~args:[ Value.Str (Printf.sprintf "%s analysed %s\n" label item) ]);
          loop (n + 1)
      | Ok _ | Error _ -> n
    in
    loop 0
  in
  let a_done = process alice "labA" work report in
  let b_done = process bob "labB" bob_work bob_report in
  Format.printf "labA processed %d, labB processed %d@." a_done b_done;

  (* Phase gate: both labs arrive before reading the final report. The
     long deadline keeps the comm layer from retrying the deferred
     reply. *)
  let released = ref 0 in
  List.iter
    (fun (who, g) ->
      Runtime.invoke who ~timeout:3600.0 ~dst:g ~meth:"Arrive" ~args:[] (fun r ->
          match r with Ok _ -> incr released | Error _ -> ()))
    [ (alice, gate); (bob, bob_gate) ];
  System.run sys;
  Format.printf "phase gate released %d parties@." !released;

  (match Api.call_exn sys bob ~dst:bob_report ~meth:"Read" ~args:[] with
  | Value.Record fields -> (
      match List.assoc_opt "data" fields with
      | Some (Value.Str data) ->
          Format.printf "final report (%d bytes):@." (String.length data);
          String.split_on_char '\n' data
          |> List.iter (fun l -> if l <> "" then Format.printf "  %s@." l)
      | _ -> ())
  | _ -> ());
  Format.printf "done in %.3f simulated seconds@." (System.now sys)
