(* Macro-dataflow over Legion objects — the Mentat lineage.

   Legion grew out of Mentat, whose programming model (the MPL the paper
   cites as one of its two IDLs) expresses programs as coarse-grain
   dataflow graphs of objects. Because Legion method calls are
   non-blocking and accepted in any order (§2), a dataflow graph maps
   directly onto objects that forward tokens to their successors — no
   extra machinery needed.

   Graph (nodes placed round-robin across two Jurisdictions):

       client ──> square ──┐
       client ──> square ──┼──> sum ──> sink
       client ──> square ──┘

   The client fires waves of tokens; each wave flows through the graph
   asynchronously and the sink accumulates wave results.

   Run with: dune exec examples/dataflow.exe *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Impl = Legion_core.Impl
module Well_known = Legion_core.Well_known
module Runtime = Legion_rt.Runtime
module System = Legion.System
module Api = Legion.Api
module C = Legion_core.Convert

(* Node functions, named so they survive in persistent state. *)
let functions : (string * (int list -> int)) list =
  [
    ("square", fun xs -> List.fold_left (fun a x -> a + (x * x)) 0 xs);
    ("sum", fun xs -> List.fold_left ( + ) 0 xs);
    ("max", fun xs -> List.fold_left Stdlib.max min_int xs);
  ]

let node_unit = "example.dataflow_node"

(* A dataflow node: waits for [needs] input tokens, applies its
   function, pushes the result to every successor, repeats. *)
let node_factory (ctx : Runtime.ctx) : Impl.part =
  let self = Runtime.proc_loid ctx.Runtime.self in
  let fn_name = ref "sum" in
  let needs = ref 1 in
  let downstream = ref [] in
  let pending = ref [] in
  let results = ref [] in
  let configure _ctx args _env k =
    match args with
    | [ cfg ] -> (
        let ( let* ) r f = Result.bind r f in
        let decoded =
          let* fn = C.str_field cfg "fn" in
          let* n = C.int_field cfg "needs" in
          let* ds = C.loid_list_field ~default:[] cfg "downstream" in
          Ok (fn, n, ds)
        in
        match decoded with
        | Error msg -> Impl.bad_args k msg
        | Ok (fn, n, ds) ->
            if List.mem_assoc fn functions then begin
              fn_name := fn;
              needs := Stdlib.max 1 n;
              downstream := ds;
              k Impl.ok_unit
            end
            else Impl.bad_args k ("unknown function " ^ fn))
    | _ -> Impl.bad_args k "Configure expects one record"
  in
  let token _ctx args env k =
    match args with
    | [ Value.Int v ] ->
        pending := v :: !pending;
        if List.length !pending >= !needs then begin
          let inputs = !pending in
          pending := [];
          let out = (List.assoc !fn_name functions) inputs in
          results := out :: !results;
          (* Forward asynchronously; the token's Responsible Agent
             travels with it. *)
          let denv = Legion_sec.Env.delegate env ~calling:self in
          List.iter
            (fun d ->
              Runtime.invoke ctx ~dst:d ~meth:"Token" ~args:[ Value.Int out ]
                ~env:denv
                (fun _ -> ()))
            !downstream
        end;
        k Impl.ok_unit
    | _ -> Impl.bad_args k "Token expects one int"
  in
  let results_meth _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.List (List.rev_map (fun r -> Value.Int r) !results)))
    | _ -> Impl.bad_args k "Results takes no arguments"
  in
  let save () =
    Value.Record
      [
        ("fn", Value.Str !fn_name);
        ("needs", Value.Int !needs);
        ("ds", C.vloids !downstream);
        ("pending", Value.List (List.map (fun v -> Value.Int v) !pending));
        ("results", Value.List (List.map (fun v -> Value.Int v) !results));
      ]
  in
  let restore v =
    let ( let* ) r f = Result.bind r f in
    let* fn = C.str_field v "fn" in
    let* n = C.int_field v "needs" in
    let* ds = C.loid_list_field v "ds" in
    let ints field =
      match Value.field v field with
      | Ok (Value.List vs) ->
          Ok (List.filter_map (function Value.Int i -> Some i | _ -> None) vs)
      | _ -> Error ("bad " ^ field)
    in
    let* p = ints "pending" in
    let* r = ints "results" in
    fn_name := fn;
    needs := n;
    downstream := ds;
    pending := p;
    results := r;
    Ok ()
  in
  Impl.part
    ~methods:
      [ ("Configure", configure); ("Token", token); ("Results", results_meth) ]
    ~save ~restore node_unit

let () =
  Impl.register node_unit node_factory;
  let sys = System.boot ~seed:29L ~sites:[ ("left", 3); ("right", 3) ] () in
  let ctx = System.client sys () in

  let node_cls =
    (* Declared in MPL — the Mentat syntax this example's model comes
       from (the paper's second IDL). *)
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"FlowNode"
      ~units:[ node_unit ]
      ~mpl:
        "mentat class FlowNode { void Configure(any cfg); void Token(int v); \
         sequence<int> Results(); }"
      ()
  in
  let mags = System.magistrates sys in
  let mk i =
    Api.create_object_exn sys ctx ~cls:node_cls ~eager:true
      ~magistrate:(List.nth mags (i mod List.length mags))
      ()
  in
  let sink = mk 0 in
  let sum = mk 1 in
  let squares = List.init 3 (fun i -> mk (i + 2)) in

  let configure node ~fn ~needs ~downstream =
    let cfg =
      Value.Record
        [
          ("fn", Value.Str fn);
          ("needs", Value.Int needs);
          ("downstream", Value.List (List.map Loid.to_value downstream));
        ]
    in
    match Api.call sys ctx ~dst:node ~meth:"Configure" ~args:[ cfg ] with
    | Ok _ -> ()
    | Error e -> failwith (Legion_rt.Err.to_string e)
  in
  configure sink ~fn:"sum" ~needs:1 ~downstream:[];
  configure sum ~fn:"sum" ~needs:3 ~downstream:[ sink ];
  List.iter
    (fun sq -> configure sq ~fn:"square" ~needs:1 ~downstream:[ sum ])
    squares;
  Format.printf "graph wired: 3 square nodes -> sum -> sink, across 2 sites@.";

  (* Fire 4 waves of tokens. A wave's three tokens flow concurrently;
     waves are separated by a drain because the sum node batches by
     arrival count — tokens from racing waves would interleave (the
     totals would still conserve, but per-wave results would not be
     identifiable). Tagged tokens would lift that restriction; the
     paper's model leaves such application semantics to the programmer. *)
  let waves = [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ]; [ 2; 2; 2 ] ] in
  let t0 = System.now sys in
  List.iter
    (fun wave ->
      List.iter2
        (fun sq v ->
          Runtime.invoke ctx ~dst:sq ~meth:"Token" ~args:[ Value.Int v ]
            (fun _ -> ()))
        squares wave;
      System.run sys)
    waves;
  Format.printf "4 waves drained in %.3f virtual s@." (System.now sys -. t0);

  (* Read the sink: each wave's sum of squares. *)
  (match Api.call_exn sys ctx ~dst:sink ~meth:"Results" ~args:[] with
  | Value.List vs ->
      let got =
        List.filter_map (function Value.Int i -> Some i | _ -> None) vs
      in
      let expect =
        List.map (fun w -> List.fold_left (fun a x -> a + (x * x)) 0 w) waves
      in
      Format.printf "sink received   : %s@."
        (String.concat ", " (List.map string_of_int (List.sort compare got)));
      Format.printf "expected (any order): %s@."
        (String.concat ", " (List.map string_of_int (List.sort compare expect)))
  | v -> Format.printf "odd sink reply: %s@." (Value.to_string v));

  (* Dataflow nodes are ordinary objects: deactivate the sum node
     mid-wave and watch the graph keep working after reactivation. *)
  let holder =
    List.find_opt
      (fun m ->
        match Api.call sys ctx ~dst:m ~meth:"ListObjects" ~args:[] with
        | Ok (Value.List vs) ->
            List.exists
              (fun v ->
                match Loid.of_value v with Ok l -> Loid.equal l sum | _ -> false)
              vs
        | _ -> false)
      mags
  in
  (match holder with
  | Some m ->
      ignore (Api.call sys ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value sum ]);
      Format.printf "sum node deactivated; firing one more wave...@."
  | None -> ());
  List.iter2
    (fun sq v ->
      Runtime.invoke ctx ~dst:sq ~meth:"Token" ~args:[ Value.Int v ] (fun _ -> ()))
    squares [ 10; 10; 10 ];
  System.run sys;
  (match Api.call_exn sys ctx ~dst:sink ~meth:"Results" ~args:[] with
  | Value.List vs ->
      Format.printf "sink now holds %d wave results (last wave expected 300)@."
        (List.length vs)
  | _ -> ());
  Format.printf "done in %.3f simulated seconds@." (System.now sys)
