examples/dataflow.mli:
