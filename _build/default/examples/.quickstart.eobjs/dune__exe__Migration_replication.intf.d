examples/migration_replication.mli:
