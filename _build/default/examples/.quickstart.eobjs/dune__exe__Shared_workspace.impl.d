examples/shared_workspace.ml: Format Legion Legion_core Legion_ctx Legion_naming Legion_objects Legion_rt Legion_wire List Printf String
