examples/bag_of_tasks.ml: Array Format Legion Legion_core Legion_objects Legion_rt Legion_sim Legion_wire List
