examples/migration_replication.ml: Format Legion Legion_core Legion_naming Legion_net Legion_repl Legion_rt Legion_wire List Printf
