examples/distributed_files.ml: Format Legion Legion_core Legion_ctx Legion_naming Legion_net Legion_rt Legion_wire List String
