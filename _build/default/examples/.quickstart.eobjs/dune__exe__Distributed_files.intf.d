examples/distributed_files.mli:
