examples/wide_area_compute.ml: Float Format Hashtbl Int64 Legion Legion_core Legion_naming Legion_net Legion_rt Legion_sched Legion_util Legion_wire List Option
