examples/dataflow.ml: Format Legion Legion_core Legion_naming Legion_rt Legion_sec Legion_wire List Result Stdlib String
