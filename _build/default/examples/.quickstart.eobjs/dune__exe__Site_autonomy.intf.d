examples/site_autonomy.mli:
