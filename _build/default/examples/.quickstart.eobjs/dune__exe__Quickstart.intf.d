examples/quickstart.mli:
