examples/quickstart.ml: Format Legion Legion_core Legion_naming Legion_net Legion_rt Legion_wire List Printf
