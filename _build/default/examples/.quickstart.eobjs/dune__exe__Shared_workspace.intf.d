examples/shared_workspace.mli:
