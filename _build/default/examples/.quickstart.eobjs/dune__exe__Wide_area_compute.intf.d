examples/wide_area_compute.mli:
