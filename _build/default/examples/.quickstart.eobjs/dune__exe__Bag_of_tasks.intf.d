examples/bag_of_tasks.mli:
