(* Bag-of-tasks over a tuple space — the classic Linda pattern, running
   on Legion objects.

   A master deposits ("task", id, payload) tuples into a shared tuple
   space; workers at two sites repeatedly In a task, compute, and Out a
   ("result", id, value) tuple; the master collects results. The
   blocking In is a deferred Legion reply: idle workers wait inside the
   space object, and every Out wakes exactly one matching waiter.

   Run with: dune exec examples/bag_of_tasks.exe *)

module Value = Legion_wire.Value
module Runtime = Legion_rt.Runtime
module Well_known = Legion_core.Well_known
module Std = Legion_objects.Std_parts
module System = Legion.System
module Api = Legion.Api

let n_tasks = 12

let () =
  Std.register ();
  let sys = System.boot ~seed:47L ~sites:[ ("hq", 3); ("farm", 3) ] () in
  let master = System.client sys ~site:0 () in
  let ts_cls =
    Api.derive_class_exn sys master ~parent:Well_known.legion_object
      ~name:"TaskSpace" ~units:[ Std.tspace_unit ] ~idl:Std.tspace_idl ~typed:true
      ()
  in
  let space = Api.create_object_exn sys master ~cls:ts_cls ~eager:true () in
  Format.printf "tuple space up; %d tasks, 4 workers at two sites@." n_tasks;

  (* Workers: pull a task, square it, push the result, repeat. Each
     worker is a client loop driven by continuations — all four run
     interleaved inside the simulation. *)
  let tasks_done = Array.make 5 0 in
  let spawn_worker wid site =
    let me = System.client sys ~site () in
    let rec loop () =
      Runtime.invoke me ~timeout:3600.0 ~dst:space ~meth:"In"
        ~args:[ Value.List [ Value.Str "task"; Value.Str "_"; Value.Str "_" ] ]
        (fun r ->
          match r with
          | Ok (Value.List [ Value.Str "task"; Value.Int id; Value.Int x ]) ->
              tasks_done.(wid) <- tasks_done.(wid) + 1;
              Runtime.invoke me ~dst:space ~meth:"Out"
                ~args:
                  [
                    Value.List
                      [ Value.Str "result"; Value.Int id; Value.Int (x * x) ];
                  ]
                (fun _ -> loop ())
          | Ok _ | Error _ -> ())
    in
    loop ()
  in
  spawn_worker 1 0;
  spawn_worker 2 0;
  spawn_worker 3 1;
  spawn_worker 4 1;

  (* Master deposits the bag. *)
  for id = 1 to n_tasks do
    Runtime.invoke master ~dst:space ~meth:"Out"
      ~args:[ Value.List [ Value.Str "task"; Value.Int id; Value.Int id ] ]
      (fun _ -> ())
  done;

  (* Master collects all results (blocking In per result). *)
  let results = ref [] in
  let remaining = ref n_tasks in
  let rec collect () =
    if !remaining > 0 then
      Runtime.invoke master ~timeout:3600.0 ~dst:space ~meth:"In"
        ~args:[ Value.List [ Value.Str "result"; Value.Str "_"; Value.Str "_" ] ]
        (fun r ->
          (match r with
          | Ok (Value.List [ Value.Str "result"; Value.Int id; Value.Int v ]) ->
              results := (id, v) :: !results
          | Ok _ | Error _ -> ());
          decr remaining;
          collect ())
  in
  collect ();
  (* Drive only until the bag is empty: a full drain would also play
     out the parked workers' hour-long deadlines. *)
  while !remaining > 0 && Legion_sim.Engine.step (System.sim sys) do
    ()
  done;

  let results = List.sort compare !results in
  Format.printf "collected %d results:@." (List.length results);
  List.iter (fun (id, v) -> Format.printf "  task %2d -> %3d@." id v) results;
  let correct =
    List.for_all (fun (id, v) -> v = id * id) results
    && List.length results = n_tasks
  in
  Format.printf "all correct: %b@." correct;
  List.iteri
    (fun wid n -> if wid > 0 then Format.printf "worker %d handled %d tasks@." wid n)
    (Array.to_list tasks_done);
  Format.printf
    "(site-0 workers sit 80x closer to the space than the farm's — Linda's \
     locality bias, visible because tasks are instantaneous)@.";
  (* The idle workers are still parked inside blocking In calls — the
     deferred replies simply never fire; a real system would Shutdown
     the space or let the workers' own deadlines lapse. *)
  Format.printf "done in %.3f simulated seconds@." (System.now sys)
