(* Site autonomy and the market in Magistrates — the paper's §2.1.3 DOE
   story: "the DOE can write its own Magistrate, and insist via the
   class mechanism that all objects that the DOE owns execute only on
   Magistrates that it trusts."

   Three Jurisdictions with three policies:
     - "campus"  : accepts anything (a university's open pool);
     - "doe"     : accepts requests only from Responsible Agents on its
                   roster (a custom activation policy);
     - "vendor"  : accepts anything but refuses Delete (a commercial
                   provider that never loses your data).

   Run with: dune exec examples/site_autonomy.exe *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Policy = Legion_sec.Policy
module Impl = Legion_core.Impl
module Well_known = Legion_core.Well_known
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module System = Legion.System
module Api = Legion.Api

let dataset_unit = "example.dataset"

(* A "sensitive dataset" object with its own MayI policy on top of the
   Jurisdiction-level controls. *)
let dataset_factory (_ctx : Runtime.ctx) : Impl.part =
  let contents = ref "classified numbers" in
  let read _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Str !contents))
    | _ -> Impl.bad_args k "Read takes no arguments"
  in
  let write _ctx args _env k =
    match args with
    | [ Value.Str s ] ->
        contents := s;
        k Impl.ok_unit
    | _ -> Impl.bad_args k "Write expects one string"
  in
  Impl.part
    ~methods:[ ("Read", read); ("Write", write) ]
    ~save:(fun () -> Value.Str !contents)
    ~restore:(fun v ->
      match v with
      | Value.Str s ->
          contents := s;
          Ok ()
      | _ -> Error "dataset state must be a string")
    dataset_unit

let show label r =
  match r with
  | Ok v -> Format.printf "  %-34s -> ok: %s@." label (Value.to_string v)
  | Error e -> Format.printf "  %-34s -> %s@." label (Err.to_string e)

let () =
  Impl.register dataset_unit dataset_factory;
  let sys =
    System.boot ~seed:7L ~sites:[ ("campus", 3); ("doe", 3); ("vendor", 3) ] ()
  in
  let doe_scientist = System.client sys ~site:1 () in
  let grad_student = System.client sys ~site:0 () in
  let scientist_loid = Runtime.proc_loid doe_scientist.Runtime.self in
  let student_loid = Runtime.proc_loid grad_student.Runtime.self in

  let campus_mag = (System.site sys 0).System.magistrate in
  let doe_mag = (System.site sys 1).System.magistrate in
  let vendor_mag = (System.site sys 2).System.magistrate in

  (* Configure the market: each provider installs its own policy. *)
  Format.printf "configuring magistrate policies...@.";
  let set ctx mag policy =
    match
      Api.call sys ctx ~dst:mag ~meth:"SetActivationPolicy"
        ~args:[ Policy.to_value policy ]
    with
    | Ok _ -> ()
    | Error e -> Format.printf "  policy rejected: %s@." (Err.to_string e)
  in
  set doe_scientist doe_mag
    (Policy.Allow_responsible (Loid.Set.of_list [ scientist_loid ]));
  set doe_scientist vendor_mag
    (Policy.Deny_methods ([ "Delete" ], Policy.Allow_all));

  let dataset_cls =
    Api.derive_class_exn sys doe_scientist ~parent:Well_known.legion_object
      ~name:"Dataset" ~units:[ dataset_unit ]
      ~idl:"interface Dataset { Read(): str; Write(s: str); }" ()
  in

  Format.printf "@.the DOE scientist places a dataset in each jurisdiction:@.";
  let at_campus =
    Api.create_object sys doe_scientist ~cls:dataset_cls ~magistrate:campus_mag
      ~eager:true ()
  in
  let at_doe =
    Api.create_object sys doe_scientist ~cls:dataset_cls ~magistrate:doe_mag
      ~eager:true ()
  in
  let at_vendor =
    Api.create_object sys doe_scientist ~cls:dataset_cls ~magistrate:vendor_mag
      ~eager:true ()
  in
  List.iter
    (fun (label, r) ->
      match r with
      | Ok (l, _) -> Format.printf "  %-10s -> %s@." label (Loid.to_string l)
      | Error e -> Format.printf "  %-10s -> %s@." label (Err.to_string e))
    [ ("campus", at_campus); ("doe", at_doe); ("vendor", at_vendor) ];

  Format.printf "@.the grad student tries the same:@.";
  (match Api.create_object sys grad_student ~cls:dataset_cls ~magistrate:campus_mag () with
  | Ok (l, _) -> Format.printf "  campus accepts the student     -> %s@." (Loid.to_string l)
  | Error e -> Format.printf "  campus refuses the student     -> %s@." (Err.to_string e));
  (match Api.create_object sys grad_student ~cls:dataset_cls ~magistrate:doe_mag () with
  | Ok _ -> Format.printf "  doe accepted the student?! site autonomy is broken@."
  | Error e ->
      Format.printf "  doe turns the student away     -> %s@." (Err.to_string e));

  (* Jurisdiction policy also gates activation of existing objects: the
     student cannot force the DOE copy back to life. *)
  (match at_doe with
  | Ok (doe_obj, _) -> (
      ignore
        (Api.call sys doe_scientist ~dst:doe_mag ~meth:"Deactivate"
           ~args:[ Loid.to_value doe_obj ]);
      Format.printf "@.dataset at DOE deactivated; who can reference it?@.";
      show "student reads the DOE dataset"
        (Api.call sys grad_student ~dst:doe_obj ~meth:"Read" ~args:[]);
      show "scientist reads the DOE dataset"
        (Api.call sys doe_scientist ~dst:doe_obj ~meth:"Read" ~args:[]))
  | Error _ -> ());

  (* The vendor never deletes. *)
  (match at_vendor with
  | Ok (vendor_obj, _) ->
      Format.printf "@.the vendor's no-delete guarantee:@.";
      show "scientist deletes at vendor"
        (Api.call sys doe_scientist ~dst:vendor_mag ~meth:"Delete"
           ~args:[ Loid.to_value vendor_obj ]);
      show "vendor data still readable"
        (Api.call sys doe_scientist ~dst:vendor_obj ~meth:"Read" ~args:[])
  | Error _ -> ());

  (* Object-level security stacks on top: the dataset itself can carry a
     MayI policy admitting only the scientist, wherever it runs. *)
  (match at_campus with
  | Ok (campus_obj, _) ->
      Format.printf "@.object-level MayI on the campus copy:@.";
      (match
         Api.call sys doe_scientist ~dst:campus_obj ~meth:"SetPolicy"
           ~args:[ Policy.to_value (Policy.allow_loids [ scientist_loid ]) ]
       with
      | Ok _ -> ()
      | Error e -> Format.printf "  SetPolicy failed: %s@." (Err.to_string e));
      show "student reads campus copy"
        (Api.call sys grad_student ~dst:campus_obj ~meth:"Read" ~args:[]);
      show "scientist reads campus copy"
        (Api.call sys doe_scientist ~dst:campus_obj ~meth:"Read" ~args:[]);
      ignore student_loid
  | Error _ -> ());

  Format.printf "@.done in %.3f simulated seconds@." (System.now sys)
