(* Quickstart: boot a small Legion, define a class, create objects,
   invoke methods, and watch activation-on-reference do its thing.

   Run with: dune exec examples/quickstart.exe *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Impl = Legion_core.Impl
module Runtime = Legion_rt.Runtime
module System = Legion.System
module Api = Legion.Api

(* 1. An implementation unit: the code of our objects. A unit bundles
   method handlers with state save/restore, so instances survive
   deactivation and migration. *)
let greeter_unit = "example.greeter"

let greeter_factory (_ctx : Runtime.ctx) : Impl.part =
  let greetings = ref 0 in
  let greet _ctx args _env k =
    match args with
    | [ Value.Str name ] ->
        incr greetings;
        k (Ok (Value.Str (Printf.sprintf "Hello, %s! (greeting #%d)" name !greetings)))
    | _ -> Impl.bad_args k "Greet expects one string"
  in
  let stats _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int !greetings))
    | _ -> Impl.bad_args k "Stats takes no arguments"
  in
  Impl.part
    ~methods:[ ("Greet", greet); ("Stats", stats) ]
    ~save:(fun () -> Value.Int !greetings)
    ~restore:(fun v ->
      match v with
      | Value.Int n ->
          greetings := n;
          Ok ()
      | _ -> Error "greeter state must be an int")
    greeter_unit

let () =
  Impl.register greeter_unit greeter_factory;

  (* 2. Boot a Legion: two sites ("universities"), three hosts each.
     This starts the five core class objects, a Binding Agent and a
     Magistrate (with storage) per site, and a Host Object per host —
     the bootstrap of paper §4.2.1. *)
  let sys = System.boot ~sites:[ ("uva", 3); ("cs", 3) ] () in
  Format.printf "booted: %d sites, %d hosts, %d magistrates@."
    (List.length (System.sites sys))
    (Legion_net.Network.host_count (System.net sys))
    (List.length (System.magistrates sys));

  (* 3. A client context: our window into the system. *)
  let ctx = System.client sys () in

  (* 4. Derive a class from LegionObject. The IDL describes the
     interface; the unit provides the implementation. *)
  let greeter_cls =
    Api.derive_class_exn sys ctx ~parent:Legion_core.Well_known.legion_object
      ~name:"Greeter" ~units:[ greeter_unit ]
      ~idl:"interface Greeter { Greet(name: str): str; Stats(): int; }" ()
  in
  Format.printf "derived class %s@." (Loid.to_string greeter_cls);

  (* 5. Create an instance. By default it is born Inert — just an
     Object Persistent Representation on some Jurisdiction's disk. *)
  let obj = Api.create_object_exn sys ctx ~cls:greeter_cls () in
  Format.printf "created %s (inert: %b)@." (Loid.to_string obj)
    (Runtime.find_proc (System.rt sys) obj = None);

  (* 6. Invoke a method. The first reference resolves the LOID through
     the Binding Agent, the class, and the Magistrate, which activates
     the object on some host (Fig. 17 of the paper). *)
  (match Api.call_exn sys ctx ~dst:obj ~meth:"Greet" ~args:[ Value.Str "world" ] with
  | Value.Str s -> Format.printf "reply: %s@." s
  | v -> Format.printf "unexpected: %s@." (Value.to_string v));
  Format.printf "object is now active: %b@."
    (Runtime.find_proc (System.rt sys) obj <> None);

  (* 7. A few more calls — served from cached bindings now. *)
  List.iter
    (fun name ->
      match Api.call_exn sys ctx ~dst:obj ~meth:"Greet" ~args:[ Value.Str name ] with
      | Value.Str s -> Format.printf "reply: %s@." s
      | _ -> ())
    [ "Legion"; "HPDC" ];

  (* 8. Deactivate the object; its state is saved to disk. The next
     call transparently reactivates it. *)
  let mag = List.hd (System.magistrates sys) in
  (match
     Api.call sys ctx ~dst:mag ~meth:"Deactivate" ~args:[ Loid.to_value obj ]
   with
  | Ok _ -> Format.printf "deactivated (inert again: %b)@."
      (Runtime.find_proc (System.rt sys) obj = None)
  | Error e -> Format.printf "deactivate refused: %s@." (Legion_rt.Err.to_string e));
  (match Api.call_exn sys ctx ~dst:obj ~meth:"Stats" ~args:[] with
  | Value.Int n -> Format.printf "after reactivation, Stats() = %d (state survived)@." n
  | _ -> ());

  Format.printf "done in %.3f simulated seconds, %d messages@."
    (System.now sys)
    (Legion_net.Network.messages_sent (System.net sys))
