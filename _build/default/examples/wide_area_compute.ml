(* Wide-area parallel computation — the workload Legion's introduction
   motivates: "wide-area assemblies of workstations, supercomputers, and
   parallel supercomputers" running one application.

   A parameter sweep over a Monte-Carlo pi estimator is fanned out to
   worker objects spread over three Jurisdictions (a university, a
   national lab, and a supercomputing center). Placement goes through a
   least-loaded Scheduling Agent; results are gathered by a collector
   object; the run reports per-site placement and timing.

   Run with: dune exec examples/wide_area_compute.exe *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Impl = Legion_core.Impl
module Well_known = Legion_core.Well_known
module Runtime = Legion_rt.Runtime
module Network = Legion_net.Network
module System = Legion.System
module Api = Legion.Api

(* A worker: estimates pi from [n] pseudo-random darts, seeded by the
   task id so results are reproducible. *)
let worker_unit = "example.worker"

let worker_factory (_ctx : Runtime.ctx) : Impl.part =
  let tasks_done = ref 0 in
  let estimate _ctx args _env k =
    match args with
    | [ Value.Int seed; Value.Int n ] ->
        let prng = Legion_util.Prng.create ~seed:(Int64.of_int seed) in
        let inside = ref 0 in
        for _ = 1 to n do
          let x = Legion_util.Prng.float prng 1.0 in
          let y = Legion_util.Prng.float prng 1.0 in
          if (x *. x) +. (y *. y) <= 1.0 then incr inside
        done;
        incr tasks_done;
        k (Ok (Value.Float (4.0 *. float_of_int !inside /. float_of_int n)))
    | _ -> Impl.bad_args k "Estimate expects (seed: int, n: int)"
  in
  let done_count _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int !tasks_done))
    | _ -> Impl.bad_args k "TasksDone takes no arguments"
  in
  Impl.part
    ~methods:[ ("Estimate", estimate); ("TasksDone", done_count) ]
    ~save:(fun () -> Value.Int !tasks_done)
    ~restore:(fun v ->
      match v with
      | Value.Int n ->
          tasks_done := n;
          Ok ()
      | _ -> Error "worker state must be an int")
    worker_unit

(* A collector: accumulates partial estimates. *)
let collector_unit = "example.collector"

let collector_factory (_ctx : Runtime.ctx) : Impl.part =
  let sum = ref 0.0 and count = ref 0 in
  let submit _ctx args _env k =
    match args with
    | [ Value.Float v ] ->
        sum := !sum +. v;
        incr count;
        k (Ok (Value.Int !count))
    | _ -> Impl.bad_args k "Submit expects one float"
  in
  let result _ctx args _env k =
    match args with
    | [] ->
        let mean = if !count = 0 then 0.0 else !sum /. float_of_int !count in
        k (Ok (Value.Record [ ("mean", Value.Float mean); ("n", Value.Int !count) ]))
    | _ -> Impl.bad_args k "Result takes no arguments"
  in
  Impl.part
    ~methods:[ ("Submit", submit); ("Result", result) ]
    ~save:(fun () -> Value.Record [ ("s", Value.Float !sum); ("c", Value.Int !count) ])
    ~restore:(fun v ->
      match (Value.field v "s", Value.field v "c") with
      | Ok (Value.Float s), Ok (Value.Int c) ->
          sum := s;
          count := c;
          Ok ()
      | _ -> Error "collector state malformed")
    collector_unit

let () =
  Impl.register worker_unit worker_factory;
  Impl.register collector_unit collector_factory;
  let sys =
    System.boot ~seed:2026L
      ~sites:[ ("university", 4); ("natlab", 6); ("superctr", 2) ]
      ()
  in
  let ctx = System.client sys () in
  Format.printf "Legion up: 3 jurisdictions, %d hosts@."
    (Network.host_count (System.net sys));

  (* A least-loaded Scheduling Agent, itself an ordinary Legion object. *)
  let sched_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
      ~name:"LeastLoadedSched"
      ~units:[ Legion_sched.Sched_part.unit_least_loaded ]
      ~kind:Well_known.kind_sched ()
  in
  let sched = Api.create_object_exn sys ctx ~cls:sched_cls ~eager:true () in

  let worker_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"PiWorker"
      ~units:[ worker_unit ]
      ~idl:
        "interface PiWorker { Estimate(seed: int, n: int): float; TasksDone(): int; }"
      ()
  in
  let collector_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Collector"
      ~units:[ collector_unit ]
      ~idl:"interface Collector { Submit(v: float): int; Result(): any; }" ()
  in
  let collector = Api.create_object_exn sys ctx ~cls:collector_cls ~eager:true () in

  (* Fan out 12 workers round-robin over the three Jurisdictions, placed
     by the Scheduling Agent within each. *)
  let n_workers = 12 in
  let magistrates = System.magistrates sys in
  let workers =
    List.init n_workers (fun i ->
        Api.create_object_exn sys ctx ~cls:worker_cls ~eager:true
          ~magistrate:(List.nth magistrates (i mod List.length magistrates))
          ~sched ())
  in
  (* Report placement. *)
  let rt = System.rt sys and net = System.net sys in
  let site_names = List.map (fun s -> s.System.site_name) (System.sites sys) in
  let placement = Hashtbl.create 8 in
  List.iter
    (fun w ->
      match Runtime.find_proc rt w with
      | Some p ->
          let site = List.nth site_names (Network.site_of net (Runtime.proc_host p)) in
          Hashtbl.replace placement site
            (1 + Option.value ~default:0 (Hashtbl.find_opt placement site))
      | None -> ())
    workers;
  Format.printf "worker placement:@.";
  Hashtbl.iter (fun site n -> Format.printf "  %-12s %d workers@." site n) placement;

  (* Dispatch 48 tasks asynchronously — method calls are non-blocking
     (§2) — and have each worker push its estimate to the collector. *)
  let t0 = System.now sys in
  let n_tasks = 48 in
  let outstanding = ref n_tasks in
  let darts = 20_000 in
  for task = 0 to n_tasks - 1 do
    let w = List.nth workers (task mod n_workers) in
    Runtime.invoke ctx ~dst:w ~meth:"Estimate"
      ~args:[ Value.Int (task + 1); Value.Int darts ]
      (fun r ->
        (match r with
        | Ok (Value.Float est) ->
            Runtime.invoke ctx ~dst:collector ~meth:"Submit"
              ~args:[ Value.Float est ] (fun _ -> ())
        | Ok _ | Error _ -> ());
        decr outstanding)
  done;
  System.run sys;
  Format.printf "dispatched %d tasks x %d darts; %d unanswered@." n_tasks darts
    !outstanding;

  (* Read the aggregated result. *)
  (match Api.call_exn sys ctx ~dst:collector ~meth:"Result" ~args:[] with
  | Value.Record fields ->
      let mean =
        match List.assoc_opt "mean" fields with
        | Some (Value.Float f) -> f
        | _ -> nan
      in
      let n =
        match List.assoc_opt "n" fields with Some (Value.Int n) -> n | _ -> 0
      in
      Format.printf "pi estimate over %d partials: %.5f (error %.5f)@." n mean
        (abs_float (mean -. Float.pi))
  | v -> Format.printf "unexpected result: %s@." (Value.to_string v));

  let ih, is_, ws = Network.messages_by_tier (System.net sys) in
  Format.printf
    "virtual time %.3f s (compute phase %.3f s); messages: %d local, %d campus, %d wide-area@."
    (System.now sys)
    (System.now sys -. t0)
    ih is_ ws
