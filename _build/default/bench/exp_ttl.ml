(* E9 (ablation) — Binding expiry vs. refresh traffic (§3.5).

   "A binding consists of an LOID, an Object Address, and a field that
   specifies the time that the binding becomes invalid. This field may
   be set to some value that indicates that the binding will never
   become explicitly invalid."

   The paper leaves the choice open; this ablation quantifies it. A
   steady workload (1000 calls over 24 stable objects, no churn) runs
   with binding TTLs from "never expires" down to 0.5 virtual seconds.
   Expired cache entries force re-resolution through the Binding Agent
   even though nothing moved.

   Expected shape: success stays at 100% and latency roughly flat in
   all configurations; Binding-Agent traffic rises from the compulsory-
   miss floor as the TTL shrinks below the run's duration — expiry buys
   bounded staleness at a per-expiry refresh cost, which the §4.1.4
   detection machinery makes redundant for correctness. *)

open Exp_common

let n_objects = 24
let n_invocations = 1000

let run_one ~ttl ~label =
  register_units ();
  let sys =
    System.boot ~seed:37L
      ~rt_config:{ Runtime.default_config with binding_ttl = ttl }
      ~sites:[ ("a", 4); ("b", 4) ]
      ()
  in
  let ctx = System.client sys () in
  let cls = make_counter_class sys ctx () in
  let objects =
    Array.init n_objects (fun _ -> Api.create_object_exn sys ctx ~cls ~eager:true ())
  in
  let prng = Prng.create ~seed:41L in
  let lat = Stats.create () in
  let ok = ref 0 in
  let before = snapshot sys in
  for _ = 1 to n_invocations do
    let target = objects.(Prng.int prng n_objects) in
    let t0 = System.now sys in
    match Api.call sys ctx ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ] with
    | Ok _ ->
        incr ok;
        Stats.add lat (System.now sys -. t0)
    | Error _ -> ()
  done;
  let after = snapshot sys in
  let agent_rq = delta_group before after Well_known.kind_binding_agent in
  [
    label;
    Printf.sprintf "%.1f" (System.now sys);
    Printf.sprintf "%.1f%%" (100.0 *. float_of_int !ok /. float_of_int n_invocations);
    fmt_ms (Stats.mean lat);
    fmt_f (float_of_int agent_rq /. float_of_int n_invocations);
  ]

let run () =
  let rows =
    [
      run_one ~ttl:None ~label:"never expires";
      run_one ~ttl:(Some 60.0) ~label:"60 s";
      run_one ~ttl:(Some 5.0) ~label:"5 s";
      run_one ~ttl:(Some 0.5) ~label:"0.5 s";
    ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E9  Ablation: binding TTL vs refresh traffic (%d calls, %d stable objects)"
         n_invocations n_objects)
    ~header:[ "binding TTL"; "run (virt s)"; "success"; "mean ms"; "agent rq/call" ]
    rows
