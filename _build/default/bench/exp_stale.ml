(* E8 — The cost of stale bindings under migration churn (§4.1.4).

   "Legion expects the presence of stale bindings … When an object
   attempts to communicate with an invalid Object Address, the Legion
   communication layer of the object is expected to detect that it has
   become invalid … it will likely request that the binding be
   refreshed."

   A client issues 1500 invocations uniformly over 24 objects while a
   churn process deactivates a random object every so often (so the next
   reference reactivates it somewhere else, invalidating every cached
   binding for it). Churn is expressed as deactivations per invocation.

   Expected shape: success stays at 100% throughout (staleness is
   masked, never surfaced); mean latency and Binding Agent traffic grow
   smoothly with churn — the price of freshness is paid per stale hit,
   not globally. *)

open Exp_common

let n_objects = 24
let n_invocations = 1500

let run_one ~churn =
  register_units ();
  let sys = System.boot ~seed:29L ~sites:[ ("a", 4); ("b", 4) ] () in
  let ctx = System.client sys () in
  let cls = make_counter_class sys ctx () in
  let objects =
    Array.init n_objects (fun _ -> Api.create_object_exn sys ctx ~cls ~eager:true ())
  in
  let prng = Prng.create ~seed:31L in
  let lat = Stats.create () in
  let ok = ref 0 and failed = ref 0 in
  let deactivations = ref 0 in
  let before = snapshot sys in
  for _ = 1 to n_invocations do
    (* Churn: with probability [churn], deactivate a random object via
       whichever magistrate holds it. *)
    if Prng.float prng 1.0 < churn then begin
      let victim = objects.(Prng.int prng n_objects) in
      let rec try_mags = function
        | [] -> ()
        | m :: rest -> (
            match
              Api.call sys ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value victim ]
            with
            | Ok _ -> incr deactivations
            | Error _ -> try_mags rest)
      in
      try_mags (System.magistrates sys)
    end;
    let target = objects.(Prng.int prng n_objects) in
    let t0 = System.now sys in
    (match Api.call sys ctx ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ] with
    | Ok _ ->
        incr ok;
        Stats.add lat (System.now sys -. t0)
    | Error _ -> incr failed)
  done;
  let after = snapshot sys in
  let agent_rq = delta_group before after Well_known.kind_binding_agent in
  [
    fmt_f churn;
    fmt_i !deactivations;
    Printf.sprintf "%.1f%%" (100.0 *. float_of_int !ok /. float_of_int n_invocations);
    fmt_ms (Stats.mean lat);
    fmt_ms (Stats.percentile lat 99.0);
    fmt_f (float_of_int agent_rq /. float_of_int n_invocations);
  ]

let run () =
  let rows = List.map (fun churn -> run_one ~churn) [ 0.0; 0.01; 0.05; 0.2; 0.5 ] in
  print_table
    ~title:
      (Printf.sprintf
         "E8  Stale-binding overhead vs migration churn (%d calls over %d objects)"
         n_invocations n_objects)
    ~header:
      [ "churn/call"; "deactivations"; "success"; "mean ms"; "p99 ms"; "agent rq/call" ]
    rows
