(* E13 — Splitting a Jurisdiction relieves its Magistrate (§2.2).

   "No single Magistrate is responsible for managing the entire Legion
   system ... if a Jurisdiction's resources impose a substantial load on
   its Magistrate, the Jurisdiction can be split, and a new Magistrate
   can be created to take over responsibility for some of the resources
   and objects."

   Fixture: one site, 6 hosts, 32 objects. The workload is
   activation-heavy (a checkpoint sweep makes everything Inert, then
   every object is referenced once — each reference costs its
   responsible Magistrate an Activate). We run the phase twice: before
   any split, and after System.split_jurisdiction moved half the
   objects to a second Magistrate.

   Expected shape: total magistrate work is conserved while the busiest
   magistrate's share drops to about half — §5's "requests to any
   particular component" bound, restored by splitting. *)

open Exp_common
module Counter = Legion_util.Counter

let n_objects = 32

let mag_requests sys before after mag =
  ignore sys;
  let name_prefix = Loid.to_string mag ^ "@" in
  let value_of snap =
    List.fold_left
      (fun acc (g, n, v) ->
        if
          g = Well_known.kind_magistrate
          && String.length n >= String.length name_prefix
          && String.sub n 0 (String.length name_prefix) = name_prefix
        then acc + v
        else acc)
      0 snap
  in
  value_of after - value_of before

let run () =
  register_units ();
  let sys = System.boot ~seed:59L ~sites:[ ("site", 6) ] () in
  let ctx = System.client sys () in
  let cls = make_counter_class sys ctx () in
  let m0 = (System.site sys 0).System.magistrate in
  let objects =
    Array.init n_objects (fun _ ->
        Api.create_object_exn sys ctx ~cls ~magistrate:m0 ())
  in
  let activation_phase () =
    ignore (System.checkpoint_all sys);
    Array.iter
      (fun o -> ignore (Api.call sys ctx ~dst:o ~meth:"Increment" ~args:[ Value.Int 1 ]))
      objects
  in
  (* Phase 1: single magistrate. *)
  let b1 = snapshot sys in
  activation_phase ();
  let a1 = snapshot sys in
  let solo = mag_requests sys b1 a1 m0 in
  (* Split, then the same phase again. *)
  let m2 = System.split_jurisdiction sys ~site:0 in
  let b2 = snapshot sys in
  activation_phase ();
  let a2 = snapshot sys in
  let after_m0 = mag_requests sys b2 a2 m0 in
  let after_m2 = mag_requests sys b2 a2 m2 in
  print_table
    ~title:
      (Printf.sprintf
         "E13  Jurisdiction split relieves the magistrate (%d activation-heavy refs)"
         n_objects)
    ~header:[ "phase"; "m0 rq"; "m2 rq"; "busiest"; "busiest share" ]
    [
      [ "before split"; fmt_i solo; "-"; fmt_i solo; "1.000" ];
      [
        "after split";
        fmt_i after_m0;
        fmt_i after_m2;
        fmt_i (Stdlib.max after_m0 after_m2);
        fmt_f
          (float_of_int (Stdlib.max after_m0 after_m2)
          /. float_of_int (Stdlib.max 1 (after_m0 + after_m2)));
      ];
    ]
