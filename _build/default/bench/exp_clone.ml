(* E4 — Relieving a hot class by cloning (§5.2.2).

   "The problem of popular class objects becoming bottlenecks can be
   alleviated by 'cloning' class objects when they become heavily used.
   New instantiation and derivation requests are passed to the cloned
   object, making it responsible for the new objects."

   A burst of 240 Create requests is spread round-robin over n ∈ {1, 2,
   4, 8} clones of one class. The §5 metric is the request count on the
   most-loaded class object.

   Expected shape: max requests per class object falls as ~1/n, while
   total work is constant. *)

open Exp_common

let n_creates = 240

let run_one ~n_clones =
  register_units ();
  let sys = System.boot ~seed:9L ~sites:[ ("a", 4); ("b", 4) ] () in
  let ctx = System.client sys () in
  let base = make_counter_class sys ctx () in
  let clones =
    base
    :: List.init (n_clones - 1) (fun _ ->
           match Api.call sys ctx ~dst:base ~meth:"Clone" ~args:[] with
           | Ok v -> (
               match Legion_core.Convert.loid_field v "loid" with
               | Ok l -> l
               | Error e -> failwith e)
           | Error e -> failwith (Err.to_string e))
  in
  let before = snapshot sys in
  for i = 0 to n_creates - 1 do
    let cls = List.nth clones (i mod n_clones) in
    match Api.create_object sys ctx ~cls () with
    | Ok _ -> ()
    | Error e -> failwith ("create: " ^ Err.to_string e)
  done;
  let after = snapshot sys in
  (* Max requests on any single class object (the bottleneck metric),
     restricted to the clone family. *)
  let clone_names =
    List.map (fun c -> Loid.to_string c ^ "@") clones
  in
  let is_clone n =
    List.exists
      (fun p -> String.length n >= String.length p && String.sub n 0 (String.length p) = p)
      clone_names
  in
  let value_of snap name =
    List.fold_left
      (fun acc (g, n, v) -> if g = Well_known.kind_class && n = name then acc + v else acc)
      0 snap
  in
  let max_rq, total_rq =
    List.fold_left
      (fun (mx, tot) (g, n, v) ->
        if g = Well_known.kind_class && is_clone n then
          let d = v - value_of before n in
          (Stdlib.max mx d, tot + d)
        else (mx, tot))
      (0, 0) after
  in
  [
    fmt_i n_clones;
    fmt_i n_creates;
    fmt_i total_rq;
    fmt_i max_rq;
    fmt_f (float_of_int max_rq /. float_of_int (Stdlib.max 1 total_rq));
  ]

let run () =
  let rows = List.map (fun n -> run_one ~n_clones:n) [ 1; 2; 4; 8 ] in
  print_table
    ~title:
      (Printf.sprintf "E4  Class cloning spreads a hot class (%d Create requests)"
         n_creates)
    ~header:[ "clones"; "creates"; "family rq"; "max rq/object"; "max share" ]
    rows
