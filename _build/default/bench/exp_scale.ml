(* E5 — The distributed-systems principle (§5.2).

   "The number of requests to any particular system component must not
   be an increasing function of the number of hosts in the system."

   We scale the system: S sites x 4 hosts, S ∈ {1, 2, 4, 8}, with a
   workload that grows proportionally (16 objects and 200 mostly-local
   invocations per site — the paper's assumption that "most accesses
   will be local"). Three variants per scale:

   - "per-site classes" (+caching): each site's objects belong to a
     class at that site — the organization-local deployments the paper
     assumes. Every per-component maximum should stay ~flat as the
     system grows: nothing concentrates.
   - "shared class" (+caching): all objects belong to ONE class. Its
     logical table serves every compulsory miss in the system, so its
     load grows with scale — exactly the "popular classes become
     bottlenecks" problem §5.2.2 solves by cloning (see E4).
   - "per-site classes, no caching": client comm caches disabled; the
     busiest Binding Agent absorbs every invocation at its site (the
     per-site constant 200), showing what caching buys.

   Expected shape: flat rows for variant 1; a growing "max class"
   column for variant 2; an agent column pinned at the per-site call
   count for variant 3. *)

open Exp_common
module Network = Legion_net.Network

let hosts_per_site = 4
let objects_per_site = 16
let invocations_per_site = 200
let local_fraction = 0.8

let run_one ~sites ~caching ~shared_class =
  register_units ();
  let site_spec = List.init sites (fun i -> (Printf.sprintf "s%d" i, hosts_per_site)) in
  let sys =
    System.boot ~seed:13L
      ?object_cache_capacity:(if caching then None else Some 0)
      ~sites:site_spec ()
  in
  let setup = System.client sys () in
  let shared = make_counter_class sys setup () in
  (* Per-site object populations, created on that site's magistrate; the
     owning class is shared or site-local depending on the variant. *)
  let site_objects =
    List.mapi
      (fun i s ->
        let cls =
          if shared_class then shared
          else
            make_counter_class sys setup ~name:(Printf.sprintf "Counter%d" i) ()
        in
        Array.init objects_per_site (fun _ ->
            Api.create_object_exn sys setup ~cls ~eager:true
              ~magistrate:s.System.magistrate ()))
      (System.sites sys)
  in
  (* One client per site; clients' caches obey the caching switch. *)
  let clients =
    List.map
      (fun s ->
        let loid = System.fresh_instance_loid sys ~of_class:Well_known.legion_object in
        let proc =
          Runtime.spawn (System.rt sys)
            ~host:(List.nth s.System.net_hosts 1)
            ~loid ~kind:"bench_client"
            ?cache_capacity:(if caching then None else Some 0)
            ~binding_agent:s.System.agent_address
            ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
            ()
        in
        { Runtime.rt = System.rt sys; self = proc })
      (System.sites sys)
  in
  let prng = Prng.create ~seed:21L in
  let before = snapshot sys in
  List.iteri
    (fun si ctx ->
      let local = List.nth site_objects si in
      for _ = 1 to invocations_per_site do
        let pool =
          if Prng.float prng 1.0 < local_fraction || sites = 1 then local
          else
            (* A remote site, uniformly. *)
            let others = List.filteri (fun i _ -> i <> si) site_objects in
            List.nth others (Prng.int prng (List.length others))
        in
        let target = pool.(Prng.int prng (Array.length pool)) in
        ignore (Api.call sys ctx ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ])
      done)
    clients;
  let after = snapshot sys in
  let busiest group = max_delta_group before after group in
  let variant =
    match (shared_class, caching) with
    | false, true -> "per-site classes"
    | true, true -> "shared class"
    | false, false -> "per-site, no cache"
    | true, false -> "shared, no cache"
  in
  [
    variant;
    fmt_i sites;
    fmt_i (sites * hosts_per_site);
    fmt_i (sites * invocations_per_site);
    fmt_i (busiest Well_known.kind_binding_agent);
    fmt_i (busiest Well_known.kind_class);
    fmt_i (busiest Well_known.kind_magistrate);
    fmt_i (busiest Well_known.kind_host);
  ]

let run () =
  let scales = [ 1; 2; 4; 8 ] in
  let rows =
    List.map (fun s -> run_one ~sites:s ~caching:true ~shared_class:false) scales
    @ List.map (fun s -> run_one ~sites:s ~caching:true ~shared_class:true) scales
    @ List.map (fun s -> run_one ~sites:s ~caching:false ~shared_class:false) scales
  in
  print_table
    ~title:
      (Printf.sprintf
         "E5  Busiest single component as the system scales (%d obj & %d calls per site, %.0f%% local)"
         objects_per_site invocations_per_site (100.0 *. local_fraction))
    ~header:
      [ "variant"; "sites"; "hosts"; "calls"; "max agent"; "max class"; "max magistr"; "max host" ]
    rows
