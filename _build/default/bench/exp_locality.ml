(* E10 — The locality assumption (§5.2).

   "We make two assumptions about the Legion system. First, we assume
   that most accesses will be local … If this assumption does not hold,
   then the scalability of Legion will depend on the scalability of the
   underlying interconnect."

   Four sites, per-site object populations, 2000 invocations with the
   fraction of site-local accesses swept from 1.0 down to 0.25 (the
   no-locality limit: targets uniform over all sites). We report mean
   latency and the wide-area share of the message budget.

   Expected shape: latency and wide-area traffic grow steeply as
   locality is lost — the model's performance comes from the
   assumption, exactly as the paper concedes. Per-component maxima stay
   bounded either way: losing locality stresses the interconnect, not
   any Legion component. *)

open Exp_common
module Network = Legion_net.Network

let n_sites = 4
let objects_per_site = 12
let n_invocations = 2000

let run_one ~local_fraction =
  register_units ();
  let sys =
    System.boot ~seed:43L
      ~sites:(List.init n_sites (fun i -> (Printf.sprintf "s%d" i, 3)))
      ()
  in
  let setup = System.client sys () in
  let site_objects =
    List.mapi
      (fun i s ->
        let cls = make_counter_class sys setup ~name:(Printf.sprintf "C%d" i) () in
        Array.init objects_per_site (fun _ ->
            Api.create_object_exn sys setup ~cls ~eager:true
              ~magistrate:s.System.magistrate ()))
      (System.sites sys)
  in
  let clients = List.map (fun _ -> ()) (System.sites sys) in
  let clients =
    List.mapi (fun i () -> (i, System.client sys ~site:i ())) clients
  in
  let prng = Prng.create ~seed:47L in
  let lat = Stats.create () in
  let msgs0 = Network.messages_sent (System.net sys) in
  let _, _, wan0 = Network.messages_by_tier (System.net sys) in
  let before = snapshot sys in
  for i = 1 to n_invocations do
    let si, ctx = List.nth clients (i mod n_sites) in
    let pool =
      if Prng.float prng 1.0 < local_fraction then List.nth site_objects si
      else List.nth site_objects (Prng.int prng n_sites)
    in
    let target = pool.(Prng.int prng (Array.length pool)) in
    let t0 = System.now sys in
    match Api.call sys ctx ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ] with
    | Ok _ -> Stats.add lat (System.now sys -. t0)
    | Error _ -> ()
  done;
  let after = snapshot sys in
  let msgs1 = Network.messages_sent (System.net sys) in
  let _, _, wan1 = Network.messages_by_tier (System.net sys) in
  [
    Printf.sprintf "%.2f" local_fraction;
    fmt_ms (Stats.mean lat);
    fmt_ms (Stats.percentile lat 99.0);
    Printf.sprintf "%.1f%%"
      (100.0 *. float_of_int (wan1 - wan0) /. float_of_int (msgs1 - msgs0));
    fmt_i (max_delta_group before after Well_known.kind_binding_agent);
    fmt_i (max_delta_group before after Well_known.kind_class);
  ]

let run () =
  let rows =
    List.map (fun lf -> run_one ~local_fraction:lf) [ 1.0; 0.95; 0.8; 0.5; 0.25 ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E10  Losing the locality assumption (%d sites, %d calls; 0.25 = uniform)"
         n_sites n_invocations)
    ~header:
      [ "local frac"; "mean ms"; "p99 ms"; "WAN msg share"; "max agent"; "max class" ]
    rows
