(* M1–M6 — Bechamel micro-benchmarks of the substrate hot paths: LOID
   codec, wire codec, binding-cache operations, event-queue throughput,
   interface checking, and a full simulated RPC round trip.

   These are wall-clock measurements of the simulator itself (not
   virtual time): they bound how large an experiment the harness can
   drive. *)

open Bechamel
module Value = Legion_wire.Value
module Codec = Legion_wire.Codec
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Binding = Legion_naming.Binding
module Cache = Legion_naming.Cache
module Interface = Legion_idl.Interface
module Engine = Legion_sim.Engine
module Network = Legion_net.Network
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Prng = Legion_util.Prng
module Counter = Legion_util.Counter

let sample_loid = Loid.make ~public_key:"0123456789abcdef" ~class_id:42L ~class_specific:7L ()

let sample_binding =
  Binding.make ~expires:10.0 ~loid:sample_loid
    ~address:
      (Address.make ~semantic:Address.Ordered_failover
         [ Address.Sim { host = 3; slot = 17 }; Address.Ip { host = 0x0A000001l; port = 4040 } ])
    ()

let sample_call_payload =
  Value.Record
    [
      ("k", Value.Str "c");
      ("id", Value.Int 123456);
      ("sl", Loid.to_value sample_loid);
      ("m", Value.Str "Increment");
      ("a", Value.List [ Value.Int 1; Value.Str "payload"; Value.Float 3.14 ]);
    ]

let sample_encoded = Codec.encode sample_call_payload

let bench_loid_codec =
  Test.make ~name:"loid encode+decode"
    (Staged.stage (fun () ->
         match Loid.of_value (Loid.to_value sample_loid) with
         | Ok l -> ignore (Sys.opaque_identity l)
         | Error _ -> assert false))

let bench_wire_codec =
  Test.make ~name:"wire encode+decode call"
    (Staged.stage (fun () ->
         match Codec.decode (Codec.encode sample_call_payload) with
         | Ok v -> ignore (Sys.opaque_identity v)
         | Error _ -> assert false))

let bench_wire_decode =
  Test.make ~name:"wire decode call"
    (Staged.stage (fun () ->
         match Codec.decode sample_encoded with
         | Ok v -> ignore (Sys.opaque_identity v)
         | Error _ -> assert false))

let bench_cache =
  let cache = Cache.create ~capacity:256 () in
  let loids =
    Array.init 512 (fun i -> Loid.make ~class_id:1L ~class_specific:(Int64.of_int i) ())
  in
  Array.iter
    (fun l ->
      Cache.add cache ~now:0.0
        (Binding.make ~loid:l ~address:(Address.singleton (Address.Sim { host = 0; slot = 0 })) ()))
    loids;
  let i = ref 0 in
  Test.make ~name:"binding cache find (256 cap)"
    (Staged.stage (fun () ->
         incr i;
         ignore (Sys.opaque_identity (Cache.find cache ~now:0.0 loids.(!i land 511)))))

let bench_event_queue =
  Test.make ~name:"event schedule+fire"
    (Staged.stage
       (let sim = Engine.create () in
        fun () ->
          ignore (Engine.schedule sim ~delay:1.0 (fun () -> ()));
          ignore (Engine.step sim)))

let bench_interface_check =
  let iface =
    Interface.make ~name:"Counter"
      [
        { Interface.meth = "Increment"; params = [ ("d", Legion_idl.Ty.Tint) ]; ret = Legion_idl.Ty.Tint };
        { Interface.meth = "Get"; params = []; ret = Legion_idl.Ty.Tint };
      ]
  in
  Test.make ~name:"interface check_call"
    (Staged.stage (fun () ->
         ignore
           (Sys.opaque_identity
              (Interface.check_call iface ~meth:"Increment" ~args:[ Value.Int 1 ]))))

(* A minimal two-host runtime for measuring a full simulated RPC round:
   send, deliver, handle, reply, deliver. *)
let bench_rpc_round =
  let sim = Engine.create () in
  let prng = Prng.create ~seed:1L in
  let registry = Counter.Registry.create () in
  let net = Network.create ~sim ~prng:(Prng.split prng) () in
  let site = Network.add_site net ~name:"s" in
  let h0 = Network.add_host net ~site ~name:"h0" in
  let h1 = Network.add_host net ~site ~name:"h1" in
  let rt = Runtime.create ~sim ~net ~registry ~prng:(Prng.split prng) () in
  let mk i = Loid.make ~class_id:9L ~class_specific:(Int64.of_int i) () in
  let server =
    Runtime.spawn rt ~host:h1 ~loid:(mk 1) ~kind:"bench"
      ~handler:(fun _ call k -> k (Ok (Value.List call.Runtime.args)))
      ()
  in
  let client =
    Runtime.spawn rt ~host:h0 ~loid:(mk 2) ~kind:"bench"
      ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
      ()
  in
  let ctx = { Runtime.rt; self = client } in
  let env = Legion_sec.Env.of_self (mk 2) in
  let address = Runtime.address_of server in
  Test.make ~name:"simulated RPC round trip"
    (Staged.stage (fun () ->
         let done_ = ref false in
         Runtime.invoke_address ctx ~address ~dst:(mk 1) ~meth:"Echo"
           ~args:[ Value.Int 1 ] ~env (fun _ -> done_ := true);
         while not !done_ do
           if not (Engine.step sim) then failwith "rpc bench: quiesced"
         done))

(* Dispatch cost with and without the typecheck guard: the price of
   enforcing the IDL at every call (wall clock; virtual cost is zero
   since guards run locally). *)
let bench_dispatch_pair =
  let iface =
    Interface.make ~name:"Counter"
      [
        { Interface.meth = "Increment"; params = [ ("d", Legion_idl.Ty.Tint) ]; ret = Legion_idl.Ty.Tint };
      ]
  in
  let mk_parts ~typed =
    let n = ref 0 in
    let app =
      Legion_core.Impl.part
        ~methods:
          [
            ( "Increment",
              fun _ args _ k ->
                match args with
                | [ Value.Int d ] ->
                    n := !n + d;
                    k (Ok (Value.Int !n))
                | _ -> Legion_core.Impl.bad_args k "Increment" );
          ]
        "bench.app"
    in
    let guard_part =
      Legion_core.Impl.part
        ~guard:(fun ~meth ~args ~env:_ ->
          if meth = "Increment" || meth = "SaveState" then
            match Interface.check_call iface ~meth ~args with
            | Ok () -> Legion_sec.Policy.Allow
            | Error m -> Legion_sec.Policy.Deny m
          else Legion_sec.Policy.Allow)
        "bench.guard"
    in
    if typed then [ guard_part; app ] else [ app ]
  in
  let mk_handler ~typed = Legion_core.Impl.compose ~parts:(mk_parts ~typed) in
  let call handler =
    let sim = Engine.create () in
    let prng = Prng.create ~seed:1L in
    let registry = Counter.Registry.create () in
    let net = Network.create ~sim ~prng:(Prng.split prng) () in
    let site = Network.add_site net ~name:"s" in
    let h = Network.add_host net ~site ~name:"h" in
    let rt = Runtime.create ~sim ~net ~registry ~prng:(Prng.split prng) () in
    let l = Loid.make ~class_id:8L ~class_specific:1L () in
    let proc = Runtime.spawn rt ~host:h ~loid:l ~kind:"bench" ~handler () in
    let ctx = { Runtime.rt; self = proc } in
    let env = Legion_sec.Env.of_self l in
    fun () ->
      handler ctx { Runtime.meth = "Increment"; args = [ Value.Int 1 ]; env }
        (fun r -> ignore (Sys.opaque_identity r))
  in
  [
    Test.make ~name:"dispatch untyped" (Staged.stage (call (mk_handler ~typed:false)));
    Test.make ~name:"dispatch typed (IDL guard)" (Staged.stage (call (mk_handler ~typed:true)));
  ]

let all_tests =
  [
    bench_loid_codec;
    bench_wire_codec;
    bench_wire_decode;
    bench_cache;
    bench_event_queue;
    bench_interface_check;
    bench_rpc_round;
  ]
  @ bench_dispatch_pair

let run () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  print_newline ();
  print_endline "M1-M6  Substrate micro-benchmarks (wall clock)";
  print_endline "+--------------------------------+--------------+----------+";
  Printf.printf "| %-30s | %-12s | %-8s |\n" "benchmark" "ns/run" "r^2";
  print_endline "+--------------------------------+--------------+----------+";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let b = Benchmark.run cfg instances elt in
          let ols =
            Analyze.OLS.ols ~bootstrap:0 ~r_square:true ~responder:"monotonic-clock"
              ~predictors:[| "run" |] b.Benchmark.lr
          in
          let est =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> Printf.sprintf "%.1f" e
            | _ -> "-"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          Printf.printf "| %-30s | %12s | %8s |\n" (Test.Elt.name elt) est r2)
        (Test.elements test))
    all_tests;
  print_endline "+--------------------------------+--------------+----------+"
