bench/exp_sched.ml: Api Exp_common Legion_net Legion_sched List Loid Printf Runtime Stdlib String System Well_known
