bench/exp_tree.ml: Api Err Exp_common Legion Legion_naming Legion_net Legion_sec List Loid Printf Runtime Stdlib String System Well_known
