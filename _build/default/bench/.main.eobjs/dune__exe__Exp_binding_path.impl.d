bench/exp_binding_path.ml: Api Err Exp_common Legion_net List Loid System Well_known
