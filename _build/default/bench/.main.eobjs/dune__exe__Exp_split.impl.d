bench/exp_split.ml: Api Array Exp_common Legion_util List Loid Printf Stdlib String System Value Well_known
