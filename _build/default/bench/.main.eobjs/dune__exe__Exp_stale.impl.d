bench/exp_stale.ml: Api Array Exp_common List Loid Printf Prng Stats System Value Well_known
