bench/main.ml: Array Exp_binding_path Exp_cache Exp_clone Exp_lifecycle Exp_locality Exp_replication Exp_scale Exp_sched Exp_split Exp_stale Exp_tree Exp_ttl List Micro Printf String Sys Unix
