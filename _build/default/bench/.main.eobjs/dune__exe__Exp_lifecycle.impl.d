bench/exp_lifecycle.ml: Api Err Exp_common Legion_core Legion_store Loid Printf Stats System Value Well_known
