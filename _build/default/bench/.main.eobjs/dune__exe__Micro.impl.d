bench/micro.ml: Analyze Array Bechamel Benchmark Int64 Legion_core Legion_idl Legion_naming Legion_net Legion_rt Legion_sec Legion_sim Legion_util Legion_wire List Printf Staged Sys Test Time Toolkit
