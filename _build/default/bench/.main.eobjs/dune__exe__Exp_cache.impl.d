bench/exp_cache.ml: Api Array Err Exp_common Legion_naming List Printf Prng Runtime System Value Well_known
