bench/exp_replication.ml: Api Exp_common Legion_core Legion_naming Legion_net Legion_repl Legion_sec List Printf Runtime Stats System Value Well_known
