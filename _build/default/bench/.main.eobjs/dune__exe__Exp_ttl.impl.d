bench/exp_ttl.ml: Api Array Exp_common Printf Prng Runtime Stats System Value Well_known
