bench/exp_common.ml: Legion Legion_core Legion_naming Legion_rt Legion_util Legion_wire List Printf Stdlib String
