bench/exp_clone.ml: Api Err Exp_common Legion_core List Loid Printf Stdlib String System Well_known
