bench/exp_scale.ml: Api Array Err Exp_common Legion_net List Printf Prng Runtime System Value Well_known
