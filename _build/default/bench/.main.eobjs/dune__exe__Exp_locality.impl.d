bench/exp_locality.ml: Api Array Exp_common Legion_net List Printf Prng Stats System Value Well_known
