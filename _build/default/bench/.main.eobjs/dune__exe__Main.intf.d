bench/main.mli:
