(* E3 — The k-ary Binding Agent combining tree (§5.2.2).

   "By constructing a k-ary tree of Binding Agents, eliminating traffic
   from 'leaf' Binding Agents to LegionClass, we can arbitrarily reduce
   the load placed on LegionClass."

   Fixture: 16 leaf Binding Agents with cold caches, each asked to
   resolve the same 24 class objects. Tree configurations: flat (every
   leaf resolves through LegionClass itself) and combining trees of
   fan-out k ∈ {2, 4} (leaves forward class lookups to parents, parents
   to grandparents, the roots resolve).

   Expected shape: requests arriving at LegionClass shrink roughly by
   the number of leaves per root as the tree deepens — the root layer
   absorbs and deduplicates the miss traffic. *)

open Exp_common
module Binding = Legion_naming.Binding
module Agent_tree = Legion.Agent_tree

let n_leaves = 16
let n_classes = 24

let build_tree sys ~fanout ~levels =
  let tree =
    Agent_tree.build sys
      ~hosts:(System.site sys 0).System.net_hosts
      ~fanout:(Stdlib.max 1 fanout) ~levels ~n_leaves
  in
  tree.Agent_tree.leaves

let run_config ~label ~fanout ~levels =
  register_units ();
  let sys = System.boot ~seed:5L ~sites:[ ("site", 8) ] () in
  let ctx = System.client sys () in
  (* A population of classes to resolve. *)
  let classes =
    List.init n_classes (fun i ->
        make_counter_class sys ctx ~name:(Printf.sprintf "C%d" i) ())
  in
  let leaves = build_tree sys ~fanout ~levels in
  let wildcard = Loid.make ~class_id:0L ~class_specific:0L () in
  let before = snapshot sys in
  let msgs0 = Legion_net.Network.messages_sent (System.net sys) in
  (* Every leaf resolves every class, cold. *)
  List.iter
    (fun leaf ->
      List.iter
        (fun cls ->
          let r =
            Api.sync sys (fun k ->
                Runtime.invoke_address ctx
                  ~address:(Runtime.address_of leaf)
                  ~dst:wildcard ~meth:"GetBinding" ~args:[ Loid.to_value cls ]
                  ~env:(Legion_sec.Env.of_self (Runtime.proc_loid ctx.Runtime.self))
                  k)
          in
          match r with
          | Ok _ -> ()
          | Error e -> failwith ("tree resolve failed: " ^ Err.to_string e))
        classes)
    leaves;
  let after = snapshot sys in
  let msgs1 = Legion_net.Network.messages_sent (System.net sys) in
  (* LegionClass's request counter: the metaclass proc lives in group
     "class" under the well-known LOID name; count its requests only. *)
  let legion_class_rq =
    let name_prefix = Loid.to_string Well_known.legion_class ^ "@" in
    let value_of snap =
      List.fold_left
        (fun acc (g, n, v) ->
          if
            g = Well_known.kind_class
            && String.length n >= String.length name_prefix
            && String.sub n 0 (String.length name_prefix) = name_prefix
          then acc + v
          else acc)
        0 snap
    in
    value_of after - value_of before
  in
  let lookups = n_leaves * n_classes in
  [
    label;
    fmt_i lookups;
    fmt_i legion_class_rq;
    fmt_f (float_of_int legion_class_rq /. float_of_int lookups);
    fmt_i (msgs1 - msgs0);
  ]

let run () =
  let rows =
    [
      run_config ~label:"flat (no tree)" ~fanout:1 ~levels:0;
      run_config ~label:"fan-out 4, depth 1" ~fanout:4 ~levels:1;
      run_config ~label:"fan-out 2, depth 2" ~fanout:2 ~levels:2;
      run_config ~label:"fan-out 4, depth 2" ~fanout:4 ~levels:2;
    ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E3  Combining tree shields LegionClass (%d leaves x %d class lookups)"
         n_leaves n_classes)
    ~header:
      [ "configuration"; "lookups"; "LegionClass rq"; "LC rq/lookup"; "total msgs" ]
    rows
