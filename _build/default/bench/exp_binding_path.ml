(* E1 — The binding-resolution path of Fig. 17 (§4.1.2).

   One LOID is resolved under the four regimes the figure describes, and
   for each we report end-to-end virtual latency, total messages, and
   which components were consulted (request deltas on Binding Agents,
   class objects, Magistrates, Host Objects).

   Expected shape: each regime strictly cheaper than the previous —
   activation > class consultation > agent cache hit > local cache hit,
   with the local hit touching no external component at all. *)

open Exp_common
module Network = Legion_net.Network

let run () =
  register_units ();
  let sys = System.boot ~seed:1L ~sites:[ ("east", 3); ("west", 3) ] () in
  let ctx = System.client sys () in
  let cls = make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls () in

  let measure label f =
    let before = snapshot sys in
    let msgs0 = Network.messages_sent (System.net sys) in
    let _, dt = f () in
    let after = snapshot sys in
    let msgs1 = Network.messages_sent (System.net sys) in
    [
      label;
      fmt_ms dt;
      fmt_i (msgs1 - msgs0);
      fmt_i (delta_group before after Well_known.kind_binding_agent);
      fmt_i (delta_group before after Well_known.kind_class);
      fmt_i (delta_group before after Well_known.kind_magistrate);
      fmt_i (delta_group before after Well_known.kind_host);
    ]
  in

  let call () = timed_call sys ctx ~dst:loid ~meth:"Get" ~args:[] in

  (* Regime 1: cold — object Inert, nothing cached anywhere. The call
     walks client -> agent -> class -> magistrate -> host object and
     activates the object. *)
  let cold = measure "cold (activate on reference)" call in

  (* Regime 3 precursor: the same client again — local comm-cache hit. *)
  let local = measure "client cache hit" call in

  (* Regime 2: a different client at the same site shares the site's
     Binding Agent, whose cache is now warm: client miss, agent hit. *)
  let ctx2 = System.client sys () in
  let agent_hit =
    measure "agent cache hit" (fun () ->
        timed_call sys ctx2 ~dst:loid ~meth:"Get" ~args:[])
  in

  (* Regime 4: the binding goes stale (deactivation); the next call pays
     detection + refresh + reactivation (§4.1.4). *)
  let mag = List.hd (System.magistrates sys) in
  let stale =
    match Api.call sys ctx ~dst:mag ~meth:"Deactivate" ~args:[ Loid.to_value loid ] with
    | Ok _ -> measure "stale (rebind + reactivate)" call
    | Error e -> [ "stale"; "deactivate failed: " ^ Err.to_string e; ""; ""; ""; ""; "" ]
  in

  print_table
    ~title:
      "E1  Binding resolution path (Fig. 17): one call under four regimes"
    ~header:
      [ "regime"; "latency ms"; "msgs"; "agent rq"; "class rq"; "magistr rq"; "host rq" ]
    [ cold; agent_hit; local; stale ]
