(* E2 — Object-to-Binding-Agent traffic vs comm-cache size (§5.2.1).

   "Each Legion object will maintain a cache of bindings. Therefore, an
   object's Binding Agent will only be consulted on a local cache miss,
   or when a stale binding is encountered."

   One client with comm-cache capacity c issues N invocations over o
   pre-activated objects with Zipf(0.9)-skewed popularity. We report
   Binding Agent requests per invocation and the client cache hit rate
   as c sweeps from 0 (no cache) to unbounded.

   Expected shape: agent traffic per invocation starts at 1.0 (every
   call consults the agent) and falls monotonically towards 0 as the
   cache covers the working set; with an unbounded cache only the o
   compulsory misses remain. *)

open Exp_common
module Cache = Legion_naming.Cache

let n_objects = 64
let n_invocations = 4000

let run_one ~capacity =
  register_units ();
  let sys = System.boot ~seed:3L ~sites:[ ("site", 4) ] () in
  let setup_ctx = System.client sys () in
  let cls = make_counter_class sys setup_ctx () in
  let objects =
    Array.init n_objects (fun _ ->
        Api.create_object_exn sys setup_ctx ~cls ~eager:true ())
  in
  (* A dedicated measurement client with the bounded comm cache. *)
  let site = System.site sys 0 in
  let loid = System.fresh_instance_loid sys ~of_class:Well_known.legion_object in
  let client =
    Runtime.spawn (System.rt sys)
      ~host:(List.nth site.System.net_hosts 1)
      ~loid ~kind:"bench_client" ?cache_capacity:capacity
      ~binding_agent:site.System.agent_address
      ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
      ()
  in
  let ctx = { Runtime.rt = System.rt sys; self = client } in
  let prng = Prng.create ~seed:99L in
  let pick = zipf_sampler prng ~n:n_objects ~s:0.9 in
  let before = snapshot sys in
  for _ = 1 to n_invocations do
    let target = objects.(pick ()) in
    ignore (Api.call sys ctx ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ])
  done;
  let after = snapshot sys in
  let agent_requests = delta_group before after Well_known.kind_binding_agent in
  let cache = Runtime.cache_of client in
  let label =
    match capacity with None -> "unbounded" | Some c -> string_of_int c
  in
  [
    label;
    fmt_i n_invocations;
    fmt_i agent_requests;
    fmt_f (float_of_int agent_requests /. float_of_int n_invocations);
    fmt_f (Cache.hit_rate cache);
  ]

(* The second tier of the cache hierarchy: disable client caches and
   sweep the Binding Agent's own capacity; its misses fall through to
   the class object (§5.2.2's "won't commonly used classes become a
   bottleneck?"). *)
let run_agent_tier ~capacity =
  register_units ();
  let sys =
    System.boot ~seed:3L ?agent_cache_capacity:capacity ~sites:[ ("site", 4) ] ()
  in
  let setup_ctx = System.client sys () in
  let cls = make_counter_class sys setup_ctx () in
  let objects =
    Array.init n_objects (fun _ ->
        Api.create_object_exn sys setup_ctx ~cls ~eager:true ())
  in
  let site = System.site sys 0 in
  let loid = System.fresh_instance_loid sys ~of_class:Well_known.legion_object in
  let client =
    Runtime.spawn (System.rt sys)
      ~host:(List.nth site.System.net_hosts 1)
      ~loid ~kind:"bench_client" ~cache_capacity:0
      ~binding_agent:site.System.agent_address
      ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
      ()
  in
  let ctx = { Runtime.rt = System.rt sys; self = client } in
  let prng = Prng.create ~seed:99L in
  let pick = zipf_sampler prng ~n:n_objects ~s:0.9 in
  let n_inv = n_invocations / 4 in
  let before = snapshot sys in
  for _ = 1 to n_inv do
    let target = objects.(pick ()) in
    ignore (Api.call sys ctx ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ])
  done;
  let after = snapshot sys in
  let class_rq = delta_group before after Well_known.kind_class in
  let label = match capacity with None -> "unbounded" | Some c -> string_of_int c in
  [
    label;
    fmt_i n_inv;
    fmt_i class_rq;
    fmt_f (float_of_int class_rq /. float_of_int n_inv);
  ]

let run () =
  let rows =
    List.map
      (fun capacity -> run_one ~capacity)
      [ Some 0; Some 4; Some 16; Some 64; None ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E2  Object->Agent traffic vs cache size (Zipf 0.9 over %d objects)"
         n_objects)
    ~header:[ "cache cap"; "invocations"; "agent rq"; "agent rq/inv"; "client hit rate" ]
    rows;
  let rows2 =
    List.map
      (fun capacity -> run_agent_tier ~capacity)
      [ Some 0; Some 16; Some 64; None ]
  in
  print_table
    ~title:
      "E2b Agent cache capacity vs class traffic (client caches disabled)"
    ~header:[ "agent cap"; "invocations"; "class rq"; "class rq/inv" ]
    rows2
