(* E11 (ablation) — Scheduling Agent policies under churn (§3.7–3.8).

   "Complex scheduling policies are intended to be implemented outside
   of the Magistrate in Scheduling Agents." This ablation compares the
   shipped policies on placement balance when the Magistrate's local
   activation counts drift (objects get deactivated behind its back by
   idle sweeps — here, by explicit deactivations).

   Workload: one Jurisdiction, 6 hosts; 120 eager creations through the
   policy under test, with every third object deactivated immediately
   (so local counts over-estimate real load). We report the final live
   process imbalance (max/mean per host) and the messages each
   placement cost.

   Expected shape: the live-probing agent keeps imbalance lowest under
   churn but pays a probe fan-out per placement; round-robin is cheap
   and fair on arrival counts but blind to the drift; the magistrate's
   built-in least-loaded (its own counters) sits in between. *)

open Exp_common
module Network = Legion_net.Network
module Sched_part = Legion_sched.Sched_part

let n_creates = 120

let run_one ~policy_unit ~label =
  register_units ();
  let sys = System.boot ~seed:53L ~sites:[ ("site", 6) ] () in
  let ctx = System.client sys () in
  let cls = make_counter_class sys ctx () in
  let site = System.site sys 0 in
  let mag = site.System.magistrate in
  let sched =
    match policy_unit with
    | None -> None
    | Some u ->
        let sched_cls =
          Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
            ~name:("Sched-" ^ label) ~units:[ u ] ~kind:Well_known.kind_sched ()
        in
        Some (Api.create_object_exn sys ctx ~cls:sched_cls ~eager:true ())
  in
  let msgs0 = Network.messages_sent (System.net sys) in
  for i = 0 to n_creates - 1 do
    let loid =
      Api.create_object_exn sys ctx ~cls ~eager:true ~magistrate:mag ?sched ()
    in
    (* Churn: every third object vanishes right away, so the
       magistrate's local counters drift from reality. *)
    if i mod 3 = 0 then
      ignore (Api.call sys ctx ~dst:mag ~meth:"Deactivate" ~args:[ Loid.to_value loid ])
  done;
  let msgs1 = Network.messages_sent (System.net sys) in
  (* Actual live application processes per host. *)
  let rt = System.rt sys in
  let loads =
    List.map
      (fun h ->
        List.length
          (List.filter
             (fun p -> Runtime.proc_kind p = Well_known.kind_app)
             (Runtime.procs_on_host rt h)))
      site.System.net_hosts
  in
  let mx = List.fold_left Stdlib.max 0 loads in
  let total = List.fold_left ( + ) 0 loads in
  let mean = float_of_int total /. float_of_int (List.length loads) in
  [
    label;
    String.concat "/" (List.map string_of_int loads);
    fmt_i mx;
    fmt_f (float_of_int mx /. mean);
    fmt_f (float_of_int (msgs1 - msgs0) /. float_of_int n_creates);
  ]

let run () =
  let rows =
    [
      run_one ~policy_unit:None ~label:"magistrate default";
      run_one ~policy_unit:(Some Sched_part.unit_random) ~label:"random";
      run_one ~policy_unit:(Some Sched_part.unit_round_robin) ~label:"round robin";
      run_one ~policy_unit:(Some Sched_part.unit_least_loaded) ~label:"least (counts)";
      run_one ~policy_unit:(Some Sched_part.unit_live_load) ~label:"live probe";
    ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "E11  Scheduling policies vs count drift (%d creates, 1/3 deactivated)"
         n_creates)
    ~header:[ "policy"; "live procs/host"; "max"; "imbalance"; "msgs/create" ]
    rows
