(* E6 — Object lifecycle costs (§3.1, §4.1.2, Fig. 11).

   Measures, over 16 objects each, the virtual-time cost of:
     - a warm invocation (cached binding, active object);
     - activation on first reference (Inert -> Active through the full
       Fig. 17 chain);
     - reactivation after Deactivate (stale binding + state restore);
     - Copy to another Jurisdiction (deactivate + OPR shipment);
     - Move to another Jurisdiction, then the first call there.

   Also reports the OPR size for the benchmark objects.

   Expected shape: warm << activation ≈ reactivation < migration; all
   dominated by wide-area hops, not computation. *)

open Exp_common
module Persistent = Legion_store.Persistent

let n = 16

let stats_row label (s : Stats.t) =
  [ label; fmt_ms (Stats.mean s); fmt_ms (Stats.median s); fmt_ms (Stats.max s) ]

let run () =
  register_units ();
  let sys = System.boot ~seed:17L ~sites:[ ("east", 4); ("west", 4) ] () in
  let ctx = System.client sys () in
  let cls = make_counter_class sys ctx () in
  let east = System.site sys 0 and west = System.site sys 1 in

  let warm = Stats.create ()
  and cold = Stats.create ()
  and react = Stats.create ()
  and copy = Stats.create ()
  and move_call = Stats.create () in

  for _ = 1 to n do
    let loid =
      Api.create_object_exn sys ctx ~cls ~magistrate:east.System.magistrate ()
    in
    (* Cold: first reference activates. *)
    let r, dt = timed_call sys ctx ~dst:loid ~meth:"Get" ~args:[] in
    (match r with Ok _ -> Stats.add cold dt | Error e -> failwith (Err.to_string e));
    (* Warm: cached binding, active object. *)
    let r, dt = timed_call sys ctx ~dst:loid ~meth:"Get" ~args:[] in
    (match r with Ok _ -> Stats.add warm dt | Error e -> failwith (Err.to_string e));
    (* Reactivation after deactivate. *)
    (match
       Api.call sys ctx ~dst:east.System.magistrate ~meth:"Deactivate"
         ~args:[ Loid.to_value loid ]
     with
    | Ok _ -> ()
    | Error e -> failwith ("deactivate: " ^ Err.to_string e));
    let r, dt = timed_call sys ctx ~dst:loid ~meth:"Get" ~args:[] in
    (match r with Ok _ -> Stats.add react dt | Error e -> failwith (Err.to_string e));
    (* Copy east -> west. *)
    let r, dt =
      timed_call sys ctx ~dst:east.System.magistrate ~meth:"Copy"
        ~args:[ Loid.to_value loid; Loid.to_value west.System.magistrate ]
    in
    (match r with Ok _ -> Stats.add copy dt | Error e -> failwith (Err.to_string e));
    (* Move east -> west, then the first call in the new Jurisdiction. *)
    (match
       Api.call sys ctx ~dst:east.System.magistrate ~meth:"Move"
         ~args:[ Loid.to_value loid; Loid.to_value west.System.magistrate ]
     with
    | Ok _ -> ()
    | Error e -> failwith ("move: " ^ Err.to_string e));
    let r, dt = timed_call sys ctx ~dst:loid ~meth:"Get" ~args:[] in
    (match r with
    | Ok _ -> Stats.add move_call dt
    | Error e -> failwith ("post-move call: " ^ Err.to_string e))
  done;

  print_table
    ~title:(Printf.sprintf "E6  Lifecycle costs in virtual time (n=%d objects)" n)
    ~header:[ "operation"; "mean ms"; "p50 ms"; "max ms" ]
    [
      stats_row "warm call" warm;
      stats_row "cold call (activate)" cold;
      stats_row "call after deactivate" react;
      stats_row "Copy to other jurisdiction" copy;
      stats_row "call after Move" move_call;
    ];
  let opr =
    Legion_core.Opr.make ~kind:Well_known.kind_app
      ~units:[ counter_unit; Well_known.unit_object ]
      ~states:[ (counter_unit, Value.Int 42) ]
      ()
  in
  Printf.printf "OPR size for a counter object: %d bytes; storage in use: %d bytes (east), %d bytes (west)\n"
    (Legion_core.Opr.size_bytes opr)
    (Persistent.total_bytes east.System.storage)
    (Persistent.total_bytes west.System.storage)
