(* Tests for the object runtime: process lifecycle, the RPC protocol,
   address semantics, timeouts, and the stale-binding machinery. *)

module Engine = Legion_sim.Engine
module Network = Legion_net.Network
module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Binding = Legion_naming.Binding
module Counter = Legion_util.Counter
module Prng = Legion_util.Prng
module Env = Legion_sec.Env
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err

let loid i = Loid.make ~class_id:50L ~class_specific:(Int64.of_int i) ()

type fixture = {
  sim : Engine.t;
  rt : Runtime.t;
  net : Network.t;
  hosts : int list;
}

let make_fixture ?config ?(hosts_per_site = 2) ?(sites = 2) () =
  let sim = Engine.create () in
  let prng = Prng.create ~seed:1L in
  let registry = Counter.Registry.create () in
  let net = Network.create ~sim ~prng:(Prng.split prng) () in
  let hosts =
    List.concat_map
      (fun s ->
        let sid = Network.add_site net ~name:(Printf.sprintf "s%d" s) in
        List.init hosts_per_site (fun i ->
            Network.add_host net ~site:sid ~name:(Printf.sprintf "s%d-h%d" s i)))
      (List.init sites (fun s -> s))
  in
  let rt = Runtime.create ~sim ~net ~registry ~prng:(Prng.split prng) ?config () in
  { sim; rt; net; hosts }

(* An echo object: replies with its argument; "Fail" replies an error;
   "Silent" never replies (for timeout tests). *)
let echo_handler : Runtime.handler =
 fun _ctx call k ->
  match call.Runtime.meth with
  | "Echo" -> k (Ok (Value.List call.Runtime.args))
  | "Fail" -> k (Error (Err.Refused "no"))
  | "Silent" -> ()
  | m -> k (Error (Err.No_such_method m))

let spawn_echo f ~host ~id =
  Runtime.spawn f.rt ~host ~loid:(loid id) ~kind:"app" ~handler:echo_handler ()

let spawn_client f ~host ~id =
  Runtime.spawn f.rt ~host ~loid:(loid id) ~kind:"client"
    ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
    ()

let sync f start =
  let r = ref None in
  start (fun x -> r := Some x);
  Engine.run f.sim;
  match !r with Some x -> x | None -> Alcotest.fail "no reply before quiescence"

let call f ctx ~dst_proc ~meth ~args =
  sync f (fun k ->
      Runtime.invoke_address ctx
        ~address:(Runtime.address_of dst_proc)
        ~dst:(Runtime.proc_loid dst_proc) ~meth ~args
        ~env:(Env.of_self (Runtime.proc_loid ctx.Runtime.self))
        k)

let test_spawn_and_echo () =
  let f = make_fixture () in
  let server = spawn_echo f ~host:(List.nth f.hosts 1) ~id:1 in
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  let ctx = { Runtime.rt = f.rt; self = client } in
  (match call f ctx ~dst_proc:server ~meth:"Echo" ~args:[ Value.Int 42 ] with
  | Ok (Value.List [ Value.Int 42 ]) -> ()
  | Ok v -> Alcotest.failf "bad echo: %s" (Value.to_string v)
  | Error e -> Alcotest.failf "echo failed: %s" (Err.to_string e));
  Alcotest.(check int) "server counted one request" 1 (Runtime.requests_of server);
  Alcotest.(check int) "runtime delivered one call" 1
    (Runtime.total_calls_delivered f.rt)

let test_error_reply () =
  let f = make_fixture () in
  let server = spawn_echo f ~host:(List.nth f.hosts 1) ~id:1 in
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  let ctx = { Runtime.rt = f.rt; self = client } in
  match call f ctx ~dst_proc:server ~meth:"Fail" ~args:[] with
  | Error (Err.Refused "no") -> ()
  | r ->
      Alcotest.failf "expected refusal, got %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e)

let test_timeout () =
  let f = make_fixture ~config:{ Runtime.default_config with call_timeout = 0.5 } () in
  let server = spawn_echo f ~host:(List.nth f.hosts 1) ~id:1 in
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  let ctx = { Runtime.rt = f.rt; self = client } in
  (match call f ctx ~dst_proc:server ~meth:"Silent" ~args:[] with
  | Error Err.Timeout -> ()
  | r ->
      Alcotest.failf "expected timeout, got %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  Alcotest.(check bool) "timed out at configured deadline" true
    (Engine.now f.sim >= 0.5)

let test_kill_and_no_such_object () =
  let f = make_fixture () in
  let server = spawn_echo f ~host:(List.nth f.hosts 1) ~id:1 in
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  let ctx = { Runtime.rt = f.rt; self = client } in
  Runtime.kill f.rt server;
  Alcotest.(check bool) "not live" false (Runtime.is_live server);
  Alcotest.(check bool) "no placements" true
    (Runtime.placements f.rt (loid 1) = []);
  match call f ctx ~dst_proc:server ~meth:"Echo" ~args:[] with
  | Error Err.No_such_object -> ()
  | r ->
      Alcotest.failf "expected no_such_object, got %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e)

let test_loid_mismatch_rejected () =
  (* A message routed to the right slot but naming a different LOID must
     be rejected: the slot was reused by another object. *)
  let f = make_fixture () in
  let server = spawn_echo f ~host:(List.nth f.hosts 1) ~id:1 in
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  let ctx = { Runtime.rt = f.rt; self = client } in
  let wrong = loid 99 in
  match
    sync f (fun k ->
        Runtime.invoke_address ctx ~address:(Runtime.address_of server) ~dst:wrong
          ~meth:"Echo" ~args:[] ~env:(Env.of_self (loid 2)) k)
  with
  | Error Err.No_such_object -> ()
  | _ -> Alcotest.fail "mismatched loid accepted"

let test_replication_all_semantics () =
  let f = make_fixture () in
  let r1 = spawn_echo f ~host:(List.nth f.hosts 0) ~id:1 in
  let r2 =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 2) ~loid:(loid 1) ~kind:"app"
      ~handler:echo_handler ()
  in
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  let ctx = { Runtime.rt = f.rt; self = client } in
  let address =
    Address.make ~semantic:Address.All
      [ Runtime.element_of r1; Runtime.element_of r2 ]
  in
  (* Both replicas receive the call; the first reply wins. *)
  (match
     sync f (fun k ->
         Runtime.invoke_address ctx ~address ~dst:(loid 1) ~meth:"Echo"
           ~args:[ Value.Int 1 ] ~env:(Env.of_self (loid 2)) k)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "replicated call failed: %s" (Err.to_string e));
  Alcotest.(check int) "replica 1 got it" 1 (Runtime.requests_of r1);
  Alcotest.(check int) "replica 2 got it" 1 (Runtime.requests_of r2)

let test_k_random_semantics () =
  let f = make_fixture () in
  let replicas =
    List.init 3 (fun i ->
        Runtime.spawn f.rt ~host:(List.nth f.hosts i) ~loid:(loid 1) ~kind:"app"
          ~handler:echo_handler ())
  in
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  let ctx = { Runtime.rt = f.rt; self = client } in
  let address =
    Address.make ~semantic:(Address.K_random 2) (List.map Runtime.element_of replicas)
  in
  (match
     sync f (fun k ->
         Runtime.invoke_address ctx ~address ~dst:(loid 1) ~meth:"Echo" ~args:[]
           ~env:(Env.of_self (loid 2)) k)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "k-random call: %s" (Err.to_string e));
  (* Exactly two of the three replicas were contacted. *)
  let contacted =
    List.length (List.filter (fun p -> Runtime.requests_of p = 1) replicas)
  in
  Alcotest.(check int) "two targets" 2 contacted

let test_failover_semantics () =
  let f = make_fixture ~config:{ Runtime.default_config with call_timeout = 0.3 } () in
  let dead =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 0) ~loid:(loid 1) ~kind:"app"
      ~handler:echo_handler ()
  in
  let live =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 2) ~loid:(loid 1) ~kind:"app"
      ~handler:echo_handler ()
  in
  Runtime.kill f.rt dead;
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  let ctx = { Runtime.rt = f.rt; self = client } in
  let address =
    Address.make ~semantic:Address.Ordered_failover
      [ Runtime.element_of dead; Runtime.element_of live ]
  in
  (match
     sync f (fun k ->
         Runtime.invoke_address ctx ~address ~dst:(loid 1) ~meth:"Echo" ~args:[]
           ~env:(Env.of_self (loid 2)) k)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "failover failed: %s" (Err.to_string e));
  Alcotest.(check int) "live replica served" 1 (Runtime.requests_of live)

let test_failover_stops_on_real_reply () =
  (* Application errors must NOT fail over: only delivery failures do. *)
  let f = make_fixture () in
  let refuser =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 0) ~loid:(loid 1) ~kind:"app"
      ~handler:(fun _ _ k -> k (Error (Err.Refused "policy")))
      ()
  in
  let fallback =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 2) ~loid:(loid 1) ~kind:"app"
      ~handler:echo_handler ()
  in
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  let ctx = { Runtime.rt = f.rt; self = client } in
  let address =
    Address.make ~semantic:Address.Ordered_failover
      [ Runtime.element_of refuser; Runtime.element_of fallback ]
  in
  (match
     sync f (fun k ->
         Runtime.invoke_address ctx ~address ~dst:(loid 1) ~meth:"Echo" ~args:[]
           ~env:(Env.of_self (loid 2)) k)
   with
  | Error (Err.Refused _) -> ()
  | r ->
      Alcotest.failf "expected refusal, got %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  Alcotest.(check int) "fallback not consulted" 0 (Runtime.requests_of fallback)

(* A toy Binding Agent handler good enough for the comm-layer tests: it
   serves bindings from a mutable table. *)
let table_agent table : Runtime.handler =
 fun ctx call k ->
  match (call.Runtime.meth, call.Runtime.args) with
  | "GetBinding", [ arg ] -> (
      let target =
        match Loid.of_value arg with
        | Ok l -> Ok l
        | Error _ -> Result.map Binding.loid (Binding.of_value arg)
      in
      match target with
      | Error _ -> k (Error (Err.Bad_args "GetBinding"))
      | Ok target -> (
          match Loid.Table.find table target with
          | Some proc ->
              (* Serve the table entry even if the process has died —
                 exactly the staleness the comm layer must survive. *)
              k (Ok (Binding.to_value (Runtime.binding_of ctx.Runtime.rt proc)))
          | None -> k (Error (Err.Not_bound "unknown"))))
  | _ -> k (Error (Err.No_such_method call.Runtime.meth))

let test_invoke_resolves_via_agent () =
  let f = make_fixture () in
  let table = Loid.Table.create () in
  let agent =
    Runtime.spawn f.rt ~host:(List.hd f.hosts) ~loid:(loid 100)
      ~kind:"binding_agent" ~handler:(table_agent table) ()
  in
  let server = spawn_echo f ~host:(List.nth f.hosts 3) ~id:1 in
  Loid.Table.set table (loid 1) server;
  let client =
    Runtime.spawn f.rt ~host:(List.hd f.hosts) ~loid:(loid 2) ~kind:"client"
      ~binding_agent:(Runtime.address_of agent)
      ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
      ()
  in
  let ctx = { Runtime.rt = f.rt; self = client } in
  (match
     sync f (fun k -> Runtime.invoke ctx ~dst:(loid 1) ~meth:"Echo" ~args:[] k)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "resolve+call failed: %s" (Err.to_string e));
  Alcotest.(check int) "agent consulted once" 1 (Runtime.requests_of agent);
  (* Second call: served from the client's comm cache, agent idle. *)
  (match
     sync f (fun k -> Runtime.invoke ctx ~dst:(loid 1) ~meth:"Echo" ~args:[] k)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "cached call failed: %s" (Err.to_string e));
  Alcotest.(check int) "cache hit, no new agent traffic" 1
    (Runtime.requests_of agent)

let test_stale_binding_rebind () =
  (* The object migrates; the client's cached binding fails; the comm
     layer refreshes through the agent and retries (§4.1.4). *)
  let f = make_fixture () in
  let table = Loid.Table.create () in
  let agent =
    Runtime.spawn f.rt ~host:(List.hd f.hosts) ~loid:(loid 100)
      ~kind:"binding_agent" ~handler:(table_agent table) ()
  in
  let server_v1 = spawn_echo f ~host:(List.nth f.hosts 1) ~id:1 in
  Loid.Table.set table (loid 1) server_v1;
  let client =
    Runtime.spawn f.rt ~host:(List.hd f.hosts) ~loid:(loid 2) ~kind:"client"
      ~binding_agent:(Runtime.address_of agent)
      ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
      ()
  in
  let ctx = { Runtime.rt = f.rt; self = client } in
  (match
     sync f (fun k -> Runtime.invoke ctx ~dst:(loid 1) ~meth:"Echo" ~args:[] k)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first call: %s" (Err.to_string e));
  (* "Migrate": kill v1, start v2 elsewhere, update the agent's table. *)
  Runtime.kill f.rt server_v1;
  let server_v2 = spawn_echo f ~host:(List.nth f.hosts 3) ~id:1 in
  Loid.Table.set table (loid 1) server_v2;
  (match
     sync f (fun k -> Runtime.invoke ctx ~dst:(loid 1) ~meth:"Echo" ~args:[] k)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-migration call: %s" (Err.to_string e));
  Alcotest.(check int) "new placement served" 1 (Runtime.requests_of server_v2)

let test_rebind_gives_up () =
  let f =
    make_fixture
      ~config:{ Runtime.default_config with call_timeout = 0.2; max_rebinds = 2 }
      ()
  in
  let table = Loid.Table.create () in
  let agent =
    Runtime.spawn f.rt ~host:(List.hd f.hosts) ~loid:(loid 100)
      ~kind:"binding_agent" ~handler:(table_agent table) ()
  in
  let server = spawn_echo f ~host:(List.nth f.hosts 1) ~id:1 in
  Loid.Table.set table (loid 1) server;
  let client =
    Runtime.spawn f.rt ~host:(List.hd f.hosts) ~loid:(loid 2) ~kind:"client"
      ~binding_agent:(Runtime.address_of agent)
      ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
      ()
  in
  let ctx = { Runtime.rt = f.rt; self = client } in
  ignore (sync f (fun k -> Runtime.invoke ctx ~dst:(loid 1) ~meth:"Echo" ~args:[] k));
  (* Kill the object but leave the agent's table stale: every rebind
     returns the same dead address; the comm layer must give up. *)
  Runtime.kill f.rt server;
  match
    sync f (fun k -> Runtime.invoke ctx ~dst:(loid 1) ~meth:"Echo" ~args:[] k)
  with
  | Error e when Err.is_delivery_failure e -> ()
  | r ->
      Alcotest.failf "expected delivery failure, got %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e)

let test_no_agent_unreachable () =
  let f = make_fixture () in
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  let ctx = { Runtime.rt = f.rt; self = client } in
  match
    sync f (fun k -> Runtime.invoke ctx ~dst:(loid 1) ~meth:"Echo" ~args:[] k)
  with
  | Error (Err.Unreachable _) -> ()
  | _ -> Alcotest.fail "expected unreachable"

let test_double_reply_ignored () =
  (* A buggy handler replying twice must not corrupt the pending table:
     the first reply wins, the duplicate is dropped. *)
  let f = make_fixture () in
  let server =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 1) ~loid:(loid 1) ~kind:"app"
      ~handler:(fun _ _ k ->
        k (Ok (Value.Int 1));
        k (Ok (Value.Int 2)))
      ()
  in
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  let ctx = { Runtime.rt = f.rt; self = client } in
  let replies = ref [] in
  Runtime.invoke_address ctx ~address:(Runtime.address_of server) ~dst:(loid 1)
    ~meth:"Echo" ~args:[] ~env:(Env.of_self (loid 2)) (fun r ->
      replies := r :: !replies);
  Engine.run f.sim;
  (* Exactly-once delivery of the continuation; which duplicate wins
     depends on network jitter. *)
  match !replies with
  | [ Ok (Value.Int (1 | 2)) ] -> ()
  | rs -> Alcotest.failf "continuation fired %d times" (List.length rs)

let test_seed_binding_skips_agent () =
  let f = make_fixture () in
  let server = spawn_echo f ~host:(List.nth f.hosts 1) ~id:1 in
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  Runtime.seed_binding client (Runtime.binding_of f.rt server);
  let ctx = { Runtime.rt = f.rt; self = client } in
  match
    sync f (fun k -> Runtime.invoke ctx ~dst:(loid 1) ~meth:"Echo" ~args:[] k)
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "seeded call failed: %s" (Err.to_string e)

let test_non_sim_element_unreachable () =
  let f = make_fixture () in
  let client = spawn_client f ~host:(List.hd f.hosts) ~id:2 in
  let ctx = { Runtime.rt = f.rt; self = client } in
  let address = Address.singleton (Address.Ip { host = 0x7F000001l; port = 80 }) in
  match
    sync f (fun k ->
        Runtime.invoke_address ctx ~address ~dst:(loid 1) ~meth:"Echo" ~args:[]
          ~env:(Env.of_self (loid 2)) k)
  with
  | Error (Err.Unreachable _) -> ()
  | _ -> Alcotest.fail "IP element should be unroutable in simulation"

let () =
  Alcotest.run "rt"
    [
      ( "rpc",
        [
          Alcotest.test_case "spawn and echo" `Quick test_spawn_and_echo;
          Alcotest.test_case "error replies" `Quick test_error_reply;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "kill then no_such_object" `Quick
            test_kill_and_no_such_object;
          Alcotest.test_case "loid mismatch rejected" `Quick
            test_loid_mismatch_rejected;
        ] );
      ( "addressing",
        [
          Alcotest.test_case "replication: All semantics" `Quick
            test_replication_all_semantics;
          Alcotest.test_case "ordered failover" `Quick test_failover_semantics;
          Alcotest.test_case "K_random races k targets" `Quick test_k_random_semantics;
          Alcotest.test_case "failover stops on real reply" `Quick
            test_failover_stops_on_real_reply;
          Alcotest.test_case "non-sim element unreachable" `Quick
            test_non_sim_element_unreachable;
        ] );
      ( "binding",
        [
          Alcotest.test_case "resolution via agent + caching" `Quick
            test_invoke_resolves_via_agent;
          Alcotest.test_case "stale binding rebinds" `Quick test_stale_binding_rebind;
          Alcotest.test_case "rebind gives up eventually" `Quick test_rebind_gives_up;
          Alcotest.test_case "no agent means unreachable" `Quick
            test_no_agent_unreachable;
          Alcotest.test_case "seeded binding" `Quick test_seed_binding_skips_agent;
          Alcotest.test_case "double reply ignored" `Quick test_double_reply_ignored;
        ] );
    ]
