(* Tests for run-time system growth (§4.2.1: "New Host Objects and
   Magistrates will be added as the Legion system expands") and the
   Fig. 8 host-class hierarchy (UnixHost / SPMDHost / UnixSMMP derived
   from LegionHost). *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Network = Legion_net.Network
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Well_known = Legion_core.Well_known
module Host_part = Legion_host.Host_part
module System = Legion.System
module Api = Legion.Api
module H = Helpers

let test_grow_site () =
  let sys = H.boot_two_sites () in
  let hosts_before = Network.host_count (System.net sys) in
  let new_hosts = System.grow_site sys ~site:0 ~n:2 () in
  Alcotest.(check int) "two host objects" 2 (List.length new_hosts);
  Alcotest.(check int) "two net hosts" (hosts_before + 2)
    (Network.host_count (System.net sys));
  let ctx = System.client sys () in
  (* The new Host Objects answer through normal resolution (they
     registered with LegionHost). *)
  List.iter
    (fun h ->
      match Api.call sys ctx ~dst:h ~meth:"GetState" ~args:[] with
      | Ok (Value.Record _) -> ()
      | r ->
          Alcotest.failf "GetState: %s"
            (match r with
            | Ok v -> Value.to_string v
            | Error e -> Err.to_string e))
    new_hosts;
  (* The Magistrate can place objects on them: grow, then force
     placement by host hint. *)
  let cls = H.make_counter_class sys ctx () in
  let target = List.hd new_hosts in
  let loid =
    Api.create_object_exn sys ctx ~cls ~eager:true
      ~magistrate:(System.site sys 0).System.magistrate ~host:target ()
  in
  match Runtime.find_proc (System.rt sys) loid with
  | Some p ->
      Alcotest.(check bool) "runs on a grown host" true
        (Runtime.proc_host p >= hosts_before)
  | None -> Alcotest.fail "not active"

let test_host_class_hierarchy () =
  (* Fig. 8: UnixHost and SPMDHost derive from LegionHost; UnixSMMP from
     UnixHost. Host objects registered under a subclass resolve through
     that subclass. *)
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let unix_host =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_host ~name:"UnixHost"
      ~kind:Well_known.kind_host ()
  in
  let spmd_host =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_host ~name:"SPMDHost"
      ~kind:Well_known.kind_host ()
  in
  let unix_smmp =
    Api.derive_class_exn sys ctx ~parent:unix_host ~name:"UnixSMMP"
      ~kind:Well_known.kind_host ()
  in
  (* All are classes with distinct identifiers under LegionHost's
     subclass list. *)
  Alcotest.(check bool) "distinct cids" true
    (List.length
       (List.sort_uniq Int64.compare
          (List.map Loid.class_id [ unix_host; spmd_host; unix_smmp ]))
    = 3);
  (match Api.call sys ctx ~dst:Well_known.legion_host ~meth:"ListSubclasses" ~args:[] with
  | Ok (Value.List vs) ->
      Alcotest.(check bool) "LegionHost has the two direct subclasses" true
        (List.length vs >= 2)
  | _ -> Alcotest.fail "ListSubclasses");
  (* The derived classes inherit the host machinery: their instance
     units include legion.host. *)
  (match Api.call sys ctx ~dst:unix_smmp ~meth:"GetInheritInfo" ~args:[] with
  | Ok info -> (
      match Legion_core.Convert.str_list_field info "units" with
      | Ok units ->
          Alcotest.(check bool) "host unit inherited" true
            (List.mem Host_part.unit_name units)
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.failf "GetInheritInfo: %s" (Err.to_string e));
  (* Grow a site with UnixSMMP hosts: the new host objects are instances
     of the subclass and resolve through it. *)
  let new_hosts = System.grow_site sys ~site:1 ~host_class:unix_smmp ~n:1 () in
  let h = List.hd new_hosts in
  Alcotest.(check int64) "instance of UnixSMMP" (Loid.class_id unix_smmp)
    (Loid.class_id h);
  (* A fresh client at the other site resolves it through the subclass
     chain: UnixSMMP <- UnixHost <- LegionHost <- LegionClass pairs. *)
  let ctx2 = System.client sys ~site:0 () in
  match Api.call sys ctx2 ~dst:h ~meth:"GetState" ~args:[] with
  | Ok (Value.Record _) -> ()
  | r ->
      Alcotest.failf "resolution through subclass chain failed: %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e)

let test_grown_host_participates_in_recovery () =
  (* An object crashes; the magistrate may reactivate it on a host that
     did not exist at boot. *)
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let site0 = System.site sys 0 in
  let new_hosts = System.grow_site sys ~site:0 ~n:1 () in
  let loid =
    Api.create_object_exn sys ctx ~cls ~magistrate:site0.System.magistrate ()
  in
  ignore (Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 6 ]);
  (* Checkpoint, then crash whatever host it runs on. *)
  ignore
    (Api.call sys ctx ~dst:site0.System.magistrate ~meth:"Deactivate"
       ~args:[ Loid.to_value loid ]);
  ignore (Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[]);
  (match Runtime.find_proc (System.rt sys) loid with
  | Some p -> Runtime.crash_host (System.rt sys) (Runtime.proc_host p)
  | None -> Alcotest.fail "inactive");
  let v = H.int_exn (Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[]) in
  Alcotest.(check int) "recovered" 6 v;
  ignore new_hosts

let () =
  Alcotest.run "growth"
    [
      ( "grow site",
        [
          Alcotest.test_case "hosts join at run time" `Quick test_grow_site;
          Alcotest.test_case "Fig. 8 host class hierarchy" `Quick
            test_host_class_hierarchy;
          Alcotest.test_case "grown hosts serve recovery" `Quick
            test_grown_host_participates_in_recovery;
        ] );
    ]
