(* Long-tail protocol coverage: the introspection and administration
   methods of every core object, plus the resource-management and
   commerce hooks (idle sweeps, §5.2.1 charge rates) and the network
   tap. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Network = Legion_net.Network
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Well_known = Legion_core.Well_known
module C = Legion_core.Convert
module System = Legion.System
module Api = Legion.Api
module H = Helpers

let intf v name =
  match C.int_field v name with Ok i -> i | Error e -> Alcotest.fail e

(* --- Class object introspection --- *)

let test_class_info_and_listings () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let _o1 = Api.create_object_exn sys ctx ~cls () in
  let _o2 = Api.create_object_exn sys ctx ~cls () in
  let sub = Api.derive_class_exn sys ctx ~parent:cls ~name:"Sub" () in
  (match Api.call sys ctx ~dst:cls ~meth:"GetClassInfo" ~args:[] with
  | Ok info ->
      Alcotest.(check int) "2 instances" 2 (intf info "instances");
      Alcotest.(check int) "1 subclass" 1 (intf info "subclasses");
      (match C.str_field info "name" with
      | Ok n -> Alcotest.(check string) "name" "Counter" n
      | Error e -> Alcotest.fail e);
      (match C.bool_field info "abstract" with
      | Ok b -> Alcotest.(check bool) "concrete" false b
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.failf "GetClassInfo: %s" (Err.to_string e));
  (match Api.call sys ctx ~dst:cls ~meth:"ListInstances" ~args:[] with
  | Ok (Value.List vs) -> Alcotest.(check int) "instances listed" 2 (List.length vs)
  | _ -> Alcotest.fail "ListInstances");
  (match Api.call sys ctx ~dst:cls ~meth:"ListSubclasses" ~args:[] with
  | Ok (Value.List vs) -> Alcotest.(check int) "subclasses listed" 1 (List.length vs)
  | _ -> Alcotest.fail "ListSubclasses");
  (* The subclass's info names its superclass. *)
  match Api.call sys ctx ~dst:sub ~meth:"GetClassInfo" ~args:[] with
  | Ok info -> (
      match C.opt_loid_field info "super" with
      | Ok (Some s) -> Alcotest.check H.loid_t "superclass" cls s
      | _ -> Alcotest.fail "no superclass recorded")
  | Error e -> Alcotest.failf "sub GetClassInfo: %s" (Err.to_string e)

let test_metaclass_locate_errors () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let ghost_class = Loid.make ~class_id:0xDEADL ~class_specific:0L () in
  match
    Api.call sys ctx ~dst:Well_known.legion_class ~meth:"LocateClass"
      ~args:[ Loid.to_value ghost_class ]
  with
  | Error (Err.Not_bound _) -> ()
  | r ->
      Alcotest.failf "expected not_bound: %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e)

let test_bad_args_everywhere () =
  (* Argument validation is uniform: wrong shapes get Bad_args, not
     crashes or silent acceptance. *)
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let mag = List.hd (System.magistrates sys) in
  let agent = (System.site sys 0).System.agent in
  let host = List.hd (System.site sys 0).System.host_objects in
  List.iter
    (fun (dst, meth, args) ->
      match Api.call sys ctx ~dst ~meth ~args with
      | Error (Err.Bad_args _) -> ()
      | r ->
          Alcotest.failf "%s should reject: %s" meth
            (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e))
    [
      (cls, "Create", []);
      (cls, "Derive", [ Value.Int 1; Value.Int 2 ]);
      (cls, "GetBinding", [ Value.Str "nope" ]);
      (cls, "InheritFrom", [ Value.Unit ]);
      (mag, "Activate", [ Value.Int 1 ]);
      (mag, "StoreObject", [ Value.Int 1; Value.Int 2 ]);
      (mag, "SweepIdle", [ Value.Int 3 ]);
      (agent, "GetBinding", [ Value.Str "x" ]);
      (agent, "AddBinding", [ Value.Unit ]);
      (agent, "SetPrice", [ Value.Int (-1) ]);
      (host, "Activate", [ Value.Int 1 ]);
      (host, "IdleProcesses", [ Value.Int 1 ]);
    ]

(* --- Idle sweep --- *)

let test_sweep_idle () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let mag = (System.site sys 0).System.magistrate in
  let busy = Api.create_object_exn sys ctx ~cls ~eager:true ~magistrate:mag () in
  let idle = Api.create_object_exn sys ctx ~cls ~eager:true ~magistrate:mag () in
  ignore (Api.call_exn sys ctx ~dst:idle ~meth:"Increment" ~args:[ Value.Int 9 ]);
  (* Let virtual time pass, touching only [busy]. *)
  for _ = 1 to 5 do
    System.run_for sys 10.0;
    ignore (Api.call_exn sys ctx ~dst:busy ~meth:"Ping" ~args:[])
  done;
  (match Api.call sys ctx ~dst:mag ~meth:"SweepIdle" ~args:[ Value.Float 30.0 ] with
  | Ok (Value.Int n) -> Alcotest.(check bool) "swept at least one" true (n >= 1)
  | r ->
      Alcotest.failf "SweepIdle: %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  Alcotest.(check bool) "idle object deactivated" true
    (Runtime.find_proc (System.rt sys) idle = None);
  Alcotest.(check bool) "busy object still active" true
    (Runtime.find_proc (System.rt sys) busy <> None);
  (* The swept object reactivates on demand with state intact. *)
  let v = H.int_exn (Api.call_exn sys ctx ~dst:idle ~meth:"Get" ~args:[]) in
  Alcotest.(check int) "state preserved" 9 v

(* --- Charge rates (§5.2.1) --- *)

let test_agent_charge_rate () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let agent = (System.site sys 0).System.agent in
  (match Api.call sys ctx ~dst:agent ~meth:"SetPrice" ~args:[ Value.Int 3 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "SetPrice: %s" (Err.to_string e));
  let revenue () =
    match Api.call sys ctx ~dst:agent ~meth:"GetStats" ~args:[] with
    | Ok stats -> intf stats "revenue"
    | Error e -> Alcotest.failf "GetStats: %s" (Err.to_string e)
  in
  (* Create first (the Create call itself resolves the class through
     the agent), then snapshot revenue before the first references. *)
  let o1 = Api.create_object_exn sys ctx ~cls () in
  let o2 = Api.create_object_exn sys ctx ~cls () in
  let r0 = revenue () in
  ignore (Api.call_exn sys ctx ~dst:o1 ~meth:"Ping" ~args:[]);
  ignore (Api.call_exn sys ctx ~dst:o2 ~meth:"Ping" ~args:[]);
  let r1 = revenue () in
  (* At least the client's two lookups were charged; infrastructure
     components resolving through the same agent (magistrate finding a
     host object, etc.) may add more. All charges are multiples of the
     price. *)
  Alcotest.(check bool)
    (Printf.sprintf "charged for the lookups (%d -> %d)" r0 r1)
    true
    (r1 >= r0 + 6 && (r1 - r0) mod 3 = 0);
  (* Cached references are free. *)
  ignore (Api.call_exn sys ctx ~dst:o1 ~meth:"Ping" ~args:[]);
  Alcotest.(check int) "no charge on cache hit" r1 (revenue ())

(* --- Network tap --- *)

let test_network_tap () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let obj = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let seen = ref 0 in
  Network.set_tap (System.net sys) (Some (fun ~src:_ ~dst:_ _ -> incr seen));
  ignore (Api.call_exn sys ctx ~dst:obj ~meth:"Ping" ~args:[]);
  Alcotest.(check bool) "tap observed traffic" true (!seen >= 2);
  let observed = !seen in
  Network.set_tap (System.net sys) None;
  ignore (Api.call_exn sys ctx ~dst:obj ~meth:"Ping" ~args:[]);
  Alcotest.(check int) "tap removed" observed !seen

(* --- Magistrate host administration --- *)

let test_add_remove_host () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let site0 = System.site sys 0 in
  let mag = site0.System.magistrate in
  (* Remove all hosts but one: activations concentrate there. *)
  let keep = List.nth site0.System.host_objects 1 in
  List.iter
    (fun h ->
      if not (Loid.equal h keep) then
        match Api.call sys ctx ~dst:mag ~meth:"RemoveHost" ~args:[ Loid.to_value h ] with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "RemoveHost: %s" (Err.to_string e))
    site0.System.host_objects;
  let objs =
    List.init 3 (fun _ ->
        Api.create_object_exn sys ctx ~cls ~eager:true ~magistrate:mag ())
  in
  let expected_host = List.nth site0.System.net_hosts 1 in
  List.iter
    (fun o ->
      match Runtime.find_proc (System.rt sys) o with
      | Some p -> Alcotest.(check int) "on the only host" expected_host (Runtime.proc_host p)
      | None -> Alcotest.fail "not active")
    objs;
  (* Put one back; it becomes eligible again. *)
  let back = List.hd site0.System.host_objects in
  match Api.call sys ctx ~dst:mag ~meth:"AddHost" ~args:[ Loid.to_value back ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "AddHost: %s" (Err.to_string e)

(* --- Host memory/GetState fields --- *)

let test_host_state_fields () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let host = List.nth (System.site sys 0).System.host_objects 2 in
  (match Api.call sys ctx ~dst:host ~meth:"SetMemoryUsage" ~args:[ Value.Int 4096 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "SetMemoryUsage: %s" (Err.to_string e));
  (match Api.call sys ctx ~dst:host ~meth:"GetState" ~args:[] with
  | Ok st ->
      Alcotest.(check int) "memory recorded" 4096 (intf st "mem");
      Alcotest.(check bool) "load present" true (intf st "load" >= 0)
  | Error e -> Alcotest.failf "GetState: %s" (Err.to_string e));
  match Api.call sys ctx ~dst:host ~meth:"Reap" ~args:[] with
  | Ok (Value.Int _) -> ()
  | _ -> Alcotest.fail "Reap"

let test_capacity_only_gates_new_activations () =
  (* Capping below current load never kills running processes; it only
     refuses new placements on that host. *)
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let site0 = System.site sys 0 in
  let host = List.nth site0.System.host_objects 2 in
  let o1 =
    Api.create_object_exn sys ctx ~cls ~eager:true
      ~magistrate:site0.System.magistrate ~host ()
  in
  (* Cap at 1: o1 keeps running. *)
  ignore (Api.call_exn sys ctx ~dst:host ~meth:"SetCPUload" ~args:[ Value.Int 1 ]);
  Alcotest.(check bool) "existing process untouched" true
    (Runtime.find_proc (System.rt sys) o1 <> None);
  let v = H.int_exn (Api.call_exn sys ctx ~dst:o1 ~meth:"Increment" ~args:[ Value.Int 1 ]) in
  Alcotest.(check int) "still serving" 1 v;
  (* New placement attempts at this host fall over elsewhere. *)
  let o2 =
    Api.create_object_exn sys ctx ~cls ~eager:true
      ~magistrate:site0.System.magistrate ~host ()
  in
  (match Runtime.find_proc (System.rt sys) o2 with
  | Some p ->
      Alcotest.(check bool) "placed elsewhere" true
        (Runtime.proc_host p <> List.nth site0.System.net_hosts 2)
  | None -> Alcotest.fail "o2 inactive");
  (* Lifting the cap re-admits. *)
  ignore (Api.call_exn sys ctx ~dst:host ~meth:"SetCPUload" ~args:[ Value.Int 0 ]);
  let o3 =
    Api.create_object_exn sys ctx ~cls ~eager:true
      ~magistrate:site0.System.magistrate ~host ()
  in
  match Runtime.find_proc (System.rt sys) o3 with
  | Some p ->
      Alcotest.(check int) "back on the host" (List.nth site0.System.net_hosts 2)
        (Runtime.proc_host p)
  | None -> Alcotest.fail "o3 inactive"

let () =
  Alcotest.run "protocol"
    [
      ( "introspection",
        [
          Alcotest.test_case "class info and listings" `Quick
            test_class_info_and_listings;
          Alcotest.test_case "LocateClass unknown" `Quick test_metaclass_locate_errors;
          Alcotest.test_case "argument validation" `Quick test_bad_args_everywhere;
          Alcotest.test_case "host state fields" `Quick test_host_state_fields;
        ] );
      ( "resource management",
        [
          Alcotest.test_case "idle sweep" `Quick test_sweep_idle;
          Alcotest.test_case "add/remove host" `Quick test_add_remove_host;
          Alcotest.test_case "capacity gates only new activations" `Quick
            test_capacity_only_gates_new_activations;
        ] );
      ( "commerce",
        [ Alcotest.test_case "charge rate accrues revenue" `Quick test_agent_charge_rate ] );
      ( "observability",
        [ Alcotest.test_case "network tap" `Quick test_network_tap ] );
    ]
