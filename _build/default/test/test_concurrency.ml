(* Concurrency stress: many in-flight operations against shared
   objects, including operations racing lifecycle transitions. The
   object model's promise is that methods are "non-blocking and may be
   accepted in any order" (§2) — these tests pin down what that means
   under contention. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module System = Legion.System
module Api = Legion.Api
module H = Helpers

let test_fan_in () =
  (* 8 clients x 25 concurrent increments at one object: every call is
     answered and the final count is exact — message passing serializes
     the handlers, no locks needed. *)
  let sys = H.boot_two_sites () in
  let setup = System.client sys () in
  let cls = H.make_counter_class sys setup () in
  let target = Api.create_object_exn sys setup ~cls ~eager:true () in
  let clients = List.init 8 (fun i -> System.client sys ~site:(i mod 2) ()) in
  let replies = ref 0 and failures = ref 0 in
  List.iter
    (fun c ->
      for _ = 1 to 25 do
        Runtime.invoke c ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ]
          (fun r ->
            match r with Ok _ -> incr replies | Error _ -> incr failures)
      done)
    clients;
  System.run sys;
  Alcotest.(check int) "all answered" 200 !replies;
  Alcotest.(check int) "no failures" 0 !failures;
  let v = H.int_exn (Api.call_exn sys setup ~dst:target ~meth:"Get" ~args:[]) in
  Alcotest.(check int) "exact count" 200 v

let test_create_storm () =
  (* Concurrent Create requests against one class: every allocated LOID
     is distinct and every object usable. *)
  let sys = H.boot_two_sites () in
  let setup = System.client sys () in
  let cls = H.make_counter_class sys setup () in
  let clients = List.init 6 (fun i -> System.client sys ~site:(i mod 2) ()) in
  let created = ref [] in
  List.iter
    (fun c ->
      for _ = 1 to 10 do
        Runtime.invoke c ~dst:cls ~meth:"Create"
          ~args:
            [
              Value.Record [];
              Value.Record [ ("eager", Value.Bool false) ];
            ]
          (fun r ->
            match r with
            | Ok v -> (
                match Legion_core.Convert.loid_field v "loid" with
                | Ok l -> created := l :: !created
                | Error _ -> ())
            | Error _ -> ())
      done)
    clients;
  System.run sys;
  Alcotest.(check int) "all creates answered" 60 (List.length !created);
  let distinct = List.sort_uniq Loid.compare !created in
  Alcotest.(check int) "all LOIDs distinct" 60 (List.length distinct);
  (* Spot-check a handful are live-able. *)
  List.iteri
    (fun i o ->
      if i < 5 then
        let v =
          H.int_exn (Api.call_exn sys setup ~dst:o ~meth:"Increment" ~args:[ Value.Int 1 ])
        in
        Alcotest.(check int) "usable" 1 v)
    !created

let test_calls_race_migration () =
  (* A stream of increments runs while the object is Moved between
     jurisdictions. Every acknowledged increment must be reflected in
     the final state — the §4.1.4 retry machinery hides the move, and
     at-least-once semantics may add duplicates but never lose an
     acknowledged update. *)
  let sys =
    H.register_counter_unit ();
    Legion.System.boot ~seed:91L
      ~rt_config:{ Runtime.default_config with call_timeout = 2.0; max_rebinds = 5 }
      ~sites:[ ("east", 3); ("west", 3) ]
      ()
  in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let m0 = (System.site sys 0).System.magistrate in
  let m1 = (System.site sys 1).System.magistrate in
  let obj = Api.create_object_exn sys ctx ~cls ~magistrate:m0 () in
  ignore (Api.call_exn sys ctx ~dst:obj ~meth:"Get" ~args:[]);
  (* Launch 30 async increments, and in the middle of the stream a
     Move. The sim interleaves everything. *)
  let acked = ref 0 and failed = ref 0 in
  let move_done = ref false in
  for i = 1 to 30 do
    Runtime.invoke ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ] (fun r ->
        match r with Ok _ -> incr acked | Error _ -> incr failed);
    if i = 15 then
      Runtime.invoke ctx ~dst:m0 ~meth:"Move"
        ~args:[ Loid.to_value obj; Loid.to_value m1 ]
        (fun r -> match r with Ok _ -> move_done := true | Error _ -> ())
  done;
  System.run sys;
  Alcotest.(check bool) "move completed" true !move_done;
  Alcotest.(check int) "every call answered" 30 (!acked + !failed);
  let v = H.int_exn (Api.call_exn sys ctx ~dst:obj ~meth:"Get" ~args:[]) in
  Alcotest.(check bool)
    (Printf.sprintf "no acknowledged update lost (%d acked, value %d)" !acked v)
    true (v >= !acked);
  (match Runtime.find_proc (System.rt sys) obj with
  | Some p ->
      Alcotest.(check bool) "ended up at west" true
        (List.mem (Runtime.proc_host p) (System.site sys 1).System.net_hosts)
  | None -> Alcotest.fail "object inactive at the end")

let test_interleaved_deactivation_stream () =
  (* Calls keep flowing while a deactivation loop bounces the object:
     clients never observe anything but success (masked staleness) and
     monotonically growing state. *)
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let obj = Api.create_object_exn sys ctx ~cls () in
  let last = ref 0 in
  for _round = 1 to 12 do
    let v = H.int_exn (Api.call_exn sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ]) in
    Alcotest.(check bool) "monotone" true (v > !last);
    last := v;
    (* Bounce it behind the client's back. *)
    List.iter
      (fun m ->
        ignore
          (Api.call sys ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value obj ]))
      (System.magistrates sys)
  done;
  Alcotest.(check int) "final count" 12 !last

let () =
  Alcotest.run "concurrency"
    [
      ( "contention",
        [
          Alcotest.test_case "fan-in is exact" `Quick test_fan_in;
          Alcotest.test_case "create storm" `Quick test_create_storm;
        ] );
      ( "lifecycle races",
        [
          Alcotest.test_case "calls race a Move" `Quick test_calls_race_migration;
          Alcotest.test_case "calls through deactivation churn" `Quick
            test_interleaved_deactivation_stream;
        ] );
    ]
