(* Shared fixtures for the test suites: a "counter" application unit and
   small boot configurations. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Impl = Legion_core.Impl
module Runtime = Legion_rt.Runtime

let counter_unit = "test.counter"

let counter_idl =
  "interface Counter { Increment(d: int): int; Get(): int; Reset(); }"

(* A counter object: the canonical minimal stateful Legion object. Its
   state round-trips through SaveState/RestoreState so it survives
   deactivation and migration. *)
let counter_factory (_ctx : Runtime.ctx) : Impl.part =
  let n = ref 0 in
  let increment _ctx args _env k =
    match args with
    | [ Value.Int d ] ->
        n := !n + d;
        k (Ok (Value.Int !n))
    | _ -> Impl.bad_args k "Increment expects one int"
  in
  let get _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int !n))
    | _ -> Impl.bad_args k "Get takes no arguments"
  in
  let reset _ctx args _env k =
    match args with
    | [] ->
        n := 0;
        k Impl.ok_unit
    | _ -> Impl.bad_args k "Reset takes no arguments"
  in
  Impl.part
    ~methods:[ ("Increment", increment); ("Get", get); ("Reset", reset) ]
    ~save:(fun () -> Value.Int !n)
    ~restore:(fun v ->
      match v with
      | Value.Int i ->
          n := i;
          Ok ()
      | _ -> Error "counter state must be an int")
    counter_unit

let register_counter_unit () = Impl.register counter_unit counter_factory

let boot_two_sites ?seed ?rt_config ?object_cache_capacity () =
  register_counter_unit ();
  Legion.System.boot ?seed ?rt_config ?object_cache_capacity
    ~sites:[ ("uva", 3); ("doe", 3) ]
    ()

let boot_one_site ?seed () =
  register_counter_unit ();
  Legion.System.boot ?seed ~sites:[ ("solo", 2) ] ()

(* Derive a concrete Counter class from LegionObject and return its
   LOID. *)
let make_counter_class sys ctx ?(name = "Counter") () =
  Legion.Api.derive_class_exn sys ctx ~parent:Legion_core.Well_known.legion_object
    ~name ~units:[ counter_unit ] ~idl:counter_idl ()

let int_exn = function
  | Value.Int i -> i
  | v -> Alcotest.failf "expected int, got %s" (Value.to_string v)

let loid_t : Loid.t Alcotest.testable = Alcotest.testable Loid.pp Loid.equal
