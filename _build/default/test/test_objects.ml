(* Tests for the standard object library: file, key-value store, queue
   and barrier units — each through the full machinery (typed classes,
   deactivation round trips, concurrent callers). *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Well_known = Legion_core.Well_known
module Std = Legion_objects.Std_parts
module System = Legion.System
module Api = Legion.Api
module H = Helpers

let boot () =
  Std.register ();
  H.register_counter_unit ();
  Legion.System.boot ~seed:71L ~sites:[ ("a", 3); ("b", 3) ] ()

let derive sys ctx ~name ~unit_ ~idl =
  Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name
    ~units:[ unit_ ] ~idl ~typed:true ()

let bounce sys ctx loid =
  (* Deactivate wherever it is; the next call reactivates. *)
  let deactivated =
    List.exists
      (fun m ->
        match Api.call sys ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value loid ] with
        | Ok _ -> true
        | Error _ -> false)
      (System.magistrates sys)
  in
  Alcotest.(check bool) "deactivated" true deactivated

(* --- File --- *)

let test_file () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls = derive sys ctx ~name:"File" ~unit_:Std.file_unit ~idl:Std.file_idl in
  let f = Api.create_object_exn sys ctx ~cls () in
  (match Api.call_exn sys ctx ~dst:f ~meth:"Write" ~args:[ Value.Str "one" ] with
  | Value.Int 1 -> ()
  | v -> Alcotest.failf "Write: %s" (Value.to_string v));
  (match Api.call_exn sys ctx ~dst:f ~meth:"Append" ~args:[ Value.Str " two" ] with
  | Value.Int 2 -> ()
  | v -> Alcotest.failf "Append: %s" (Value.to_string v));
  Alcotest.(check int) "size" 7
    (H.int_exn (Api.call_exn sys ctx ~dst:f ~meth:"Size" ~args:[]));
  bounce sys ctx f;
  match Api.call_exn sys ctx ~dst:f ~meth:"Read" ~args:[] with
  | Value.Record fields ->
      Alcotest.(check bool) "contents survive" true
        (List.assoc_opt "data" fields = Some (Value.Str "one two"));
      Alcotest.(check bool) "version survives" true
        (List.assoc_opt "version" fields = Some (Value.Int 2))
  | v -> Alcotest.failf "Read: %s" (Value.to_string v)

(* --- Key-value store --- *)

let test_kv () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls = derive sys ctx ~name:"Kv" ~unit_:Std.kv_unit ~idl:Std.kv_idl in
  let kv = Api.create_object_exn sys ctx ~cls () in
  ignore
    (Api.call_exn sys ctx ~dst:kv ~meth:"Put"
       ~args:[ Value.Str "a"; Value.Int 1 ]);
  ignore
    (Api.call_exn sys ctx ~dst:kv ~meth:"Put"
       ~args:[ Value.Str "b"; Value.List [ Value.Str "nested" ] ]);
  Alcotest.(check int) "count" 2
    (H.int_exn (Api.call_exn sys ctx ~dst:kv ~meth:"Count" ~args:[]));
  (* Overwrite. *)
  ignore (Api.call_exn sys ctx ~dst:kv ~meth:"Put" ~args:[ Value.Str "a"; Value.Int 7 ]);
  Alcotest.(check int) "still 2 keys" 2
    (H.int_exn (Api.call_exn sys ctx ~dst:kv ~meth:"Count" ~args:[]));
  (match Api.call_exn sys ctx ~dst:kv ~meth:"GetKey" ~args:[ Value.Str "a" ] with
  | Value.Int 7 -> ()
  | v -> Alcotest.failf "GetKey: %s" (Value.to_string v));
  (* Missing keys are a definitive Not_bound. *)
  (match Api.call sys ctx ~dst:kv ~meth:"GetKey" ~args:[ Value.Str "zzz" ] with
  | Error (Err.Not_bound _) -> ()
  | _ -> Alcotest.fail "missing key must be not_bound");
  bounce sys ctx kv;
  (match Api.call_exn sys ctx ~dst:kv ~meth:"Keys" ~args:[] with
  | Value.List [ Value.Str "a"; Value.Str "b" ] -> ()
  | v -> Alcotest.failf "Keys after bounce: %s" (Value.to_string v));
  (match Api.call_exn sys ctx ~dst:kv ~meth:"DeleteKey" ~args:[ Value.Str "a" ] with
  | Value.Bool true -> ()
  | v -> Alcotest.failf "DeleteKey: %s" (Value.to_string v));
  match Api.call_exn sys ctx ~dst:kv ~meth:"DeleteKey" ~args:[ Value.Str "a" ] with
  | Value.Bool false -> ()
  | v -> Alcotest.failf "DeleteKey twice: %s" (Value.to_string v)

(* --- Queue --- *)

let test_queue () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls = derive sys ctx ~name:"Queue" ~unit_:Std.queue_unit ~idl:Std.queue_idl in
  let q = Api.create_object_exn sys ctx ~cls () in
  (match Api.call sys ctx ~dst:q ~meth:"Pop" ~args:[] with
  | Error (Err.Not_bound _) -> ()
  | _ -> Alcotest.fail "empty pop must be not_bound");
  List.iter
    (fun i -> ignore (Api.call_exn sys ctx ~dst:q ~meth:"Push" ~args:[ Value.Int i ]))
    [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3
    (H.int_exn (Api.call_exn sys ctx ~dst:q ~meth:"Length" ~args:[]));
  bounce sys ctx q;
  (* FIFO order survives the round trip. *)
  List.iter
    (fun expect ->
      match Api.call_exn sys ctx ~dst:q ~meth:"Pop" ~args:[] with
      | Value.Int v -> Alcotest.(check int) "fifo" expect v
      | v -> Alcotest.failf "Pop: %s" (Value.to_string v))
    [ 1; 2; 3 ]

let test_queue_producers_consumers () =
  (* Two producers at one site, two consumers at the other, through one
     queue object: everything pushed is popped exactly once. *)
  let sys = boot () in
  let p1 = System.client sys ~site:0 () in
  let p2 = System.client sys ~site:0 () in
  let c1 = System.client sys ~site:1 () in
  let c2 = System.client sys ~site:1 () in
  let cls = derive sys p1 ~name:"WorkQueue" ~unit_:Std.queue_unit ~idl:Std.queue_idl in
  let q = Api.create_object_exn sys p1 ~cls ~eager:true () in
  for i = 1 to 10 do
    let producer = if i mod 2 = 0 then p1 else p2 in
    ignore (Api.call_exn sys producer ~dst:q ~meth:"Push" ~args:[ Value.Int i ])
  done;
  let popped = ref [] in
  let rec drain consumer =
    match Api.call sys consumer ~dst:q ~meth:"Pop" ~args:[] with
    | Ok (Value.Int v) ->
        popped := v :: !popped;
        drain consumer
    | Ok v -> Alcotest.failf "Pop: %s" (Value.to_string v)
    | Error (Err.Not_bound _) -> ()
    | Error e -> Alcotest.failf "Pop: %s" (Err.to_string e)
  in
  (* Consumers alternate drains; between them they get everything. *)
  drain c1;
  drain c2;
  Alcotest.(check (list int)) "exactly once, in order" (List.init 10 (fun i -> i + 1))
    (List.rev !popped)

(* --- Barrier --- *)

let test_barrier () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls =
    derive sys ctx ~name:"Barrier" ~unit_:Std.barrier_unit ~idl:Std.barrier_idl
  in
  let b = Api.create_object_exn sys ctx ~cls ~eager:true () in
  ignore (Api.call_exn sys ctx ~dst:b ~meth:"Configure" ~args:[ Value.Int 3 ]);
  (* Three parties arrive asynchronously; none is released until the
     last one arrives. *)
  let released = ref [] in
  let parties =
    List.init 3 (fun i ->
        let c = System.client sys ~site:(i mod 2) () in
        (i, c))
  in
  (* Arrive blocks until the phase completes: callers raise their
     deadline so the comm layer does not retry a deferred reply. *)
  List.iter
    (fun (i, c) ->
      Runtime.invoke c ~timeout:3600.0 ~dst:b ~meth:"Arrive" ~args:[] (fun r ->
          match r with
          | Ok (Value.Int n) -> released := (i, n) :: !released
          | Ok _ | Error _ -> ()))
    parties;
  System.run sys;
  Alcotest.(check int) "all released together" 3 (List.length !released);
  List.iter
    (fun (_, n) -> Alcotest.(check int) "arrival count" 3 n)
    !released;
  Alcotest.(check int) "barrier empty again" 0
    (H.int_exn (Api.call_exn sys ctx ~dst:b ~meth:"Waiting" ~args:[]));
  (* Reconfiguring with waiters releases them with a refusal. *)
  let got_refused = ref false in
  Runtime.invoke ctx ~timeout:3600.0 ~dst:b ~meth:"Arrive" ~args:[] (fun r ->
      match r with Error (Err.Refused _) -> got_refused := true | _ -> ());
  System.run_for sys 1.0;
  ignore (Api.call_exn sys ctx ~dst:b ~meth:"Configure" ~args:[ Value.Int 2 ]);
  Alcotest.(check bool) "waiter released on reconfigure" true !got_refused

let test_barrier_waiting_count () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls =
    derive sys ctx ~name:"Barrier2" ~unit_:Std.barrier_unit ~idl:Std.barrier_idl
  in
  let b = Api.create_object_exn sys ctx ~cls ~eager:true () in
  ignore (Api.call_exn sys ctx ~dst:b ~meth:"Configure" ~args:[ Value.Int 5 ]);
  let other = System.client sys () in
  Runtime.invoke other ~timeout:3600.0 ~dst:b ~meth:"Arrive" ~args:[] (fun _ -> ());
  System.run_for sys 1.0;
  Alcotest.(check int) "one waiting" 1
    (H.int_exn (Api.call_exn sys ctx ~dst:b ~meth:"Waiting" ~args:[]))

(* --- Lock --- *)

let test_lock_mutual_exclusion () =
  let sys = boot () in
  let owner = System.client sys () in
  let cls = derive sys owner ~name:"Lock" ~unit_:Std.lock_unit ~idl:Std.lock_idl in
  let lock = Api.create_object_exn sys owner ~cls ~eager:true () in
  let alice = System.client sys ~site:0 () in
  let bob = System.client sys ~site:1 () in
  (* Alice acquires immediately. *)
  (match Api.call sys alice ~dst:lock ~meth:"Acquire" ~args:[] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "acquire: %s" (Err.to_string e));
  (match Api.call sys owner ~dst:lock ~meth:"Holder" ~args:[] with
  | Ok v -> (
      match Loid.of_value v with
      | Ok h ->
          Alcotest.check H.loid_t "alice holds it"
            (Runtime.proc_loid alice.Runtime.self) h
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.failf "holder: %s" (Err.to_string e));
  (* Bob's acquire defers; a long deadline avoids comm-layer retries. *)
  let bob_got_it = ref false in
  Runtime.invoke bob ~timeout:3600.0 ~dst:lock ~meth:"Acquire" ~args:[] (fun r ->
      match r with Ok _ -> bob_got_it := true | Error _ -> ());
  System.run_for sys 1.0;
  Alcotest.(check bool) "bob still waiting" false !bob_got_it;
  Alcotest.(check int) "queue length" 1
    (H.int_exn (Api.call_exn sys owner ~dst:lock ~meth:"QueueLength" ~args:[]));
  (* Bob cannot release what he does not hold. *)
  (match Api.call sys bob ~dst:lock ~meth:"Release" ~args:[] with
  | Error (Err.Refused _) -> ()
  | _ -> Alcotest.fail "non-holder released");
  (* Alice releases: bob is granted. *)
  (match Api.call sys alice ~dst:lock ~meth:"Release" ~args:[] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "release: %s" (Err.to_string e));
  System.run sys;
  Alcotest.(check bool) "bob granted" true !bob_got_it;
  (* Releasing a free lock (after bob releases) is refused. *)
  (match Api.call sys bob ~dst:lock ~meth:"Release" ~args:[] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "bob release: %s" (Err.to_string e));
  match Api.call sys bob ~dst:lock ~meth:"Release" ~args:[] with
  | Error (Err.Refused _) -> ()
  | _ -> Alcotest.fail "double release accepted"

let test_lock_fifo_handoff () =
  let sys = boot () in
  let owner = System.client sys () in
  let cls = derive sys owner ~name:"Lock2" ~unit_:Std.lock_unit ~idl:Std.lock_idl in
  let lock = Api.create_object_exn sys owner ~cls ~eager:true () in
  ignore (Api.call_exn sys owner ~dst:lock ~meth:"Acquire" ~args:[]);
  let order = ref [] in
  let contenders = List.init 3 (fun i -> (i, System.client sys ~site:(i mod 2) ())) in
  (* Stagger the requests so arrival order is deterministic. *)
  List.iter
    (fun (i, c) ->
      Runtime.invoke c ~timeout:3600.0 ~dst:lock ~meth:"Acquire" ~args:[] (fun r ->
          match r with
          | Ok _ ->
              order := i :: !order;
              (* Immediately pass it on. *)
              Runtime.invoke c ~dst:lock ~meth:"Release" ~args:[] (fun _ -> ())
          | Error _ -> ());
      System.run_for sys 0.5)
    contenders;
  ignore (Api.call_exn sys owner ~dst:lock ~meth:"Release" ~args:[]);
  System.run sys;
  Alcotest.(check (list int)) "FIFO grant order" [ 0; 1; 2 ] (List.rev !order)

(* --- Tuple space --- *)

let tuple vs = Value.List vs

let test_tspace_basics () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls =
    derive sys ctx ~name:"TSpace" ~unit_:Std.tspace_unit ~idl:Std.tspace_idl
  in
  let ts = Api.create_object_exn sys ctx ~cls () in
  (* Deposit a few tuples. *)
  List.iter
    (fun t -> ignore (Api.call_exn sys ctx ~dst:ts ~meth:"Out" ~args:[ t ]))
    [
      tuple [ Value.Str "job"; Value.Int 1 ];
      tuple [ Value.Str "job"; Value.Int 2 ];
      tuple [ Value.Str "result"; Value.Int 10 ];
    ];
  Alcotest.(check int) "size" 3
    (H.int_exn (Api.call_exn sys ctx ~dst:ts ~meth:"Size" ~args:[]));
  (* Rd matches without removing; wildcard "_" is the formal. *)
  (match
     Api.call_exn sys ctx ~dst:ts ~meth:"Rd"
       ~args:[ tuple [ Value.Str "job"; Value.Str "_" ] ]
   with
  | Value.List [ Value.Str "job"; Value.Int 1 ] -> ()
  | v -> Alcotest.failf "Rd: %s" (Value.to_string v));
  Alcotest.(check int) "rd kept it" 3
    (H.int_exn (Api.call_exn sys ctx ~dst:ts ~meth:"Size" ~args:[]));
  (* In takes destructively, matching by actual value. *)
  (match
     Api.call_exn sys ctx ~dst:ts ~meth:"In"
       ~args:[ tuple [ Value.Str "job"; Value.Int 2 ] ]
   with
  | Value.List [ Value.Str "job"; Value.Int 2 ] -> ()
  | v -> Alcotest.failf "In: %s" (Value.to_string v));
  Alcotest.(check int) "in removed it" 2
    (H.int_exn (Api.call_exn sys ctx ~dst:ts ~meth:"Size" ~args:[]));
  (* Try* are non-blocking. *)
  (match
     Api.call sys ctx ~dst:ts ~meth:"TryIn"
       ~args:[ tuple [ Value.Str "nope"; Value.Str "_" ] ]
   with
  | Error (Err.Not_bound _) -> ()
  | _ -> Alcotest.fail "TryIn must not block");
  (* Pattern arity matters: a 1-element pattern matches no 2-tuples. *)
  match
    Api.call sys ctx ~dst:ts ~meth:"TryRd" ~args:[ tuple [ Value.Str "_" ] ]
  with
  | Error (Err.Not_bound _) -> ()
  | _ -> Alcotest.fail "arity ignored"

let test_tspace_blocking_in () =
  (* A consumer's In defers until a producer's Out arrives — Linda's
     rendezvous, over Legion deferred replies. *)
  let sys = boot () in
  let ctx = System.client sys () in
  let cls =
    derive sys ctx ~name:"TSpace2" ~unit_:Std.tspace_unit ~idl:Std.tspace_idl
  in
  let ts = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let consumer = System.client sys ~site:1 () in
  let got = ref None in
  Runtime.invoke consumer ~timeout:3600.0 ~dst:ts ~meth:"In"
    ~args:[ tuple [ Value.Str "answer"; Value.Str "_" ] ]
    (fun r -> match r with Ok v -> got := Some v | Error _ -> ());
  System.run_for sys 1.0;
  Alcotest.(check bool) "still waiting" true (!got = None);
  ignore
    (Api.call_exn sys ctx ~dst:ts ~meth:"Out"
       ~args:[ tuple [ Value.Str "answer"; Value.Int 42 ] ]);
  System.run sys;
  (match !got with
  | Some (Value.List [ Value.Str "answer"; Value.Int 42 ]) -> ()
  | Some v -> Alcotest.failf "wrong tuple: %s" (Value.to_string v)
  | None -> Alcotest.fail "consumer never released");
  Alcotest.(check int) "space empty" 0
    (H.int_exn (Api.call_exn sys ctx ~dst:ts ~meth:"Size" ~args:[]))

let test_tspace_flush_releases_waiters () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls =
    derive sys ctx ~name:"TSpace4" ~unit_:Std.tspace_unit ~idl:Std.tspace_idl
  in
  let ts = Api.create_object_exn sys ctx ~cls ~eager:true () in
  ignore
    (Api.call_exn sys ctx ~dst:ts ~meth:"Out" ~args:[ tuple [ Value.Int 1 ] ]);
  let waiter_result = ref None in
  let w = System.client sys ~site:1 () in
  Runtime.invoke w ~timeout:3600.0 ~dst:ts ~meth:"In"
    ~args:[ tuple [ Value.Str "never"; Value.Str "_" ] ]
    (fun r -> waiter_result := Some r);
  System.run_for sys 1.0;
  (match Api.call_exn sys ctx ~dst:ts ~meth:"Flush" ~args:[] with
  | Value.Int 1 -> ()
  | v -> Alcotest.failf "Flush: %s" (Value.to_string v));
  System.run_for sys 1.0;
  (match !waiter_result with
  | Some (Error (Err.Refused _)) -> ()
  | Some _ -> Alcotest.fail "waiter released oddly"
  | None -> Alcotest.fail "waiter not released");
  Alcotest.(check int) "empty" 0
    (H.int_exn (Api.call_exn sys ctx ~dst:ts ~meth:"Size" ~args:[]))

let test_tspace_persists () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls =
    derive sys ctx ~name:"TSpace3" ~unit_:Std.tspace_unit ~idl:Std.tspace_idl
  in
  let ts = Api.create_object_exn sys ctx ~cls () in
  ignore
    (Api.call_exn sys ctx ~dst:ts ~meth:"Out"
       ~args:[ tuple [ Value.Str "kept"; Value.Int 1 ] ]);
  bounce sys ctx ts;
  match
    Api.call_exn sys ctx ~dst:ts ~meth:"TryRd"
      ~args:[ tuple [ Value.Str "kept"; Value.Str "_" ] ]
  with
  | Value.List _ -> ()
  | v -> Alcotest.failf "tuple lost: %s" (Value.to_string v)

(* --- Model-based properties: random op sequences (with deactivation
   bounces mixed in) agree with reference structures. --- *)

type kv_op = KPut of int * int | KGet of int | KDel of int | KBounce

let kv_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> KPut (abs k mod 6, v)) int small_int);
        (3, map (fun k -> KGet (abs k mod 6)) int);
        (2, map (fun k -> KDel (abs k mod 6)) int);
        (1, return KBounce);
      ])

let kv_model_prop =
  QCheck.Test.make ~name:"kv agrees with a map model" ~count:20
    (QCheck.make
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function
                | KPut (k, v) -> Printf.sprintf "Put(%d,%d)" k v
                | KGet k -> Printf.sprintf "Get(%d)" k
                | KDel k -> Printf.sprintf "Del(%d)" k
                | KBounce -> "Bounce")
              ops))
       QCheck.Gen.(list_size (1 -- 20) kv_op_gen))
    (fun ops ->
      let sys = boot () in
      let ctx = System.client sys () in
      let cls = derive sys ctx ~name:"KvM" ~unit_:Std.kv_unit ~idl:Std.kv_idl in
      let kv = Api.create_object_exn sys ctx ~cls () in
      let model : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let key k = Printf.sprintf "k%d" k in
      List.for_all
        (fun op ->
          match op with
          | KPut (k, v) -> (
              Hashtbl.replace model (key k) v;
              match
                Api.call sys ctx ~dst:kv ~meth:"Put"
                  ~args:[ Value.Str (key k); Value.Int v ]
              with
              | Ok _ -> true
              | Error _ -> false)
          | KGet k -> (
              match
                ( Api.call sys ctx ~dst:kv ~meth:"GetKey" ~args:[ Value.Str (key k) ],
                  Hashtbl.find_opt model (key k) )
              with
              | Ok (Value.Int v), Some v' -> v = v'
              | Error (Err.Not_bound _), None -> true
              | _ -> false)
          | KDel k -> (
              let present = Hashtbl.mem model (key k) in
              Hashtbl.remove model (key k);
              match
                Api.call sys ctx ~dst:kv ~meth:"DeleteKey" ~args:[ Value.Str (key k) ]
              with
              | Ok (Value.Bool b) -> b = present
              | _ -> false)
          | KBounce ->
              List.exists
                (fun m ->
                  match
                    Api.call sys ctx ~dst:m ~meth:"Deactivate"
                      ~args:[ Loid.to_value kv ]
                  with
                  | Ok _ -> true
                  | Error _ -> false)
                (System.magistrates sys))
        ops)

type q_op = QPush of int | QPop | QBounce

let q_op_gen =
  QCheck.Gen.(
    frequency
      [ (4, map (fun v -> QPush v) small_int); (3, return QPop); (1, return QBounce) ])

let queue_model_prop =
  QCheck.Test.make ~name:"queue agrees with a fifo model" ~count:20
    (QCheck.make
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function
                | QPush v -> Printf.sprintf "Push(%d)" v
                | QPop -> "Pop"
                | QBounce -> "Bounce")
              ops))
       QCheck.Gen.(list_size (1 -- 20) q_op_gen))
    (fun ops ->
      let sys = boot () in
      let ctx = System.client sys () in
      let cls = derive sys ctx ~name:"QM" ~unit_:Std.queue_unit ~idl:Std.queue_idl in
      let q = Api.create_object_exn sys ctx ~cls () in
      let model : int Queue.t = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | QPush v -> (
              Queue.push v model;
              match Api.call sys ctx ~dst:q ~meth:"Push" ~args:[ Value.Int v ] with
              | Ok (Value.Int n) -> n = Queue.length model
              | _ -> false)
          | QPop -> (
              match (Api.call sys ctx ~dst:q ~meth:"Pop" ~args:[], Queue.take_opt model) with
              | Ok (Value.Int v), Some v' -> v = v'
              | Error (Err.Not_bound _), None -> true
              | _ -> false)
          | QBounce ->
              List.exists
                (fun m ->
                  match
                    Api.call sys ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value q ]
                  with
                  | Ok _ -> true
                  | Error _ -> false)
                (System.magistrates sys))
        ops)

let () =
  Alcotest.run "objects"
    [
      ("file", [ Alcotest.test_case "versioned contents" `Quick test_file ]);
      ("kv", [ Alcotest.test_case "map semantics" `Quick test_kv ]);
      ( "queue",
        [
          Alcotest.test_case "fifo across deactivation" `Quick test_queue;
          Alcotest.test_case "producers and consumers" `Quick
            test_queue_producers_consumers;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "n-party release" `Quick test_barrier;
          Alcotest.test_case "waiting count" `Quick test_barrier_waiting_count;
        ] );
      ( "lock",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
          Alcotest.test_case "FIFO handoff" `Quick test_lock_fifo_handoff;
        ] );
      ( "tuple space",
        [
          Alcotest.test_case "out/in/rd semantics" `Quick test_tspace_basics;
          Alcotest.test_case "blocking In rendezvous" `Quick test_tspace_blocking_in;
          Alcotest.test_case "tuples persist" `Quick test_tspace_persists;
          Alcotest.test_case "Flush releases waiters" `Quick
            test_tspace_flush_releases_waiters;
        ] );
      ( "models",
        [
          QCheck_alcotest.to_alcotest kv_model_prop;
          QCheck_alcotest.to_alcotest queue_model_prop;
        ] );
    ]
