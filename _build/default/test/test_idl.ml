(* Tests for the IDL: types, interfaces, parsing. *)

module Ty = Legion_idl.Ty
module Interface = Legion_idl.Interface
module Parser = Legion_idl.Parser
module Value = Legion_wire.Value
module Loid = Legion_naming.Loid

let ty_t = Alcotest.testable Ty.pp Ty.equal
let iface_t = Alcotest.testable Interface.pp Interface.equal

(* --- Types --- *)

let test_ty_check_scalars () =
  Alcotest.(check bool) "int" true (Ty.check Ty.Tint (Value.Int 3));
  Alcotest.(check bool) "i64 as int" true (Ty.check Ty.Tint (Value.I64 3L));
  Alcotest.(check bool) "str not int" false (Ty.check Ty.Tint (Value.Str "x"));
  Alcotest.(check bool) "any matches" true (Ty.check Ty.Tany (Value.Str "x"));
  Alcotest.(check bool) "unit" true (Ty.check Ty.Tunit Value.Unit);
  Alcotest.(check bool) "blob" true (Ty.check Ty.Tblob (Value.Blob ""));
  Alcotest.(check bool) "str is not blob" false (Ty.check Ty.Tblob (Value.Str ""))

let test_ty_check_loid_binding () =
  let l = Loid.make ~class_id:1L ~class_specific:2L () in
  Alcotest.(check bool) "loid" true (Ty.check Ty.Tloid (Loid.to_value l));
  Alcotest.(check bool) "not loid" false (Ty.check Ty.Tloid (Value.Int 1))

let test_ty_check_compound () =
  Alcotest.(check bool) "list" true
    (Ty.check (Ty.Tlist Ty.Tint) (Value.List [ Value.Int 1; Value.Int 2 ]));
  Alcotest.(check bool) "bad element" false
    (Ty.check (Ty.Tlist Ty.Tint) (Value.List [ Value.Str "x" ]));
  Alcotest.(check bool) "opt none" true (Ty.check (Ty.Topt Ty.Tint) (Value.List []));
  Alcotest.(check bool) "opt some" true
    (Ty.check (Ty.Topt Ty.Tint) (Value.List [ Value.Int 1 ]));
  Alcotest.(check bool) "opt too many" false
    (Ty.check (Ty.Topt Ty.Tint) (Value.List [ Value.Int 1; Value.Int 2 ]));
  let rty = Ty.Trecord [ ("a", Ty.Tint); ("b", Ty.Tstr) ] in
  Alcotest.(check bool) "record any order" true
    (Ty.check rty (Value.Record [ ("b", Value.Str "s"); ("a", Value.Int 1) ]));
  Alcotest.(check bool) "missing field" false
    (Ty.check rty (Value.Record [ ("a", Value.Int 1) ]));
  Alcotest.(check bool) "extra field" false
    (Ty.check rty
       (Value.Record [ ("a", Value.Int 1); ("b", Value.Str "s"); ("c", Value.Unit) ]))

let ty_gen =
  QCheck.Gen.(
    sized
      (fix (fun self n ->
           let base =
             oneofl
               [ Ty.Tunit; Ty.Tbool; Ty.Tint; Ty.Tfloat; Ty.Tstr; Ty.Tblob;
                 Ty.Tloid; Ty.Tbinding; Ty.Tany ]
           in
           if n <= 1 then base
           else
             frequency
               [
                 (3, base);
                 (1, map (fun t -> Ty.Tlist t) (self (n / 2)));
                 (1, map (fun t -> Ty.Topt t) (self (n / 2)));
                 ( 1,
                   map
                     (fun ts ->
                       Ty.Trecord (List.mapi (fun i t -> (Printf.sprintf "f%d" i, t)) ts))
                     (list_size (1 -- 3) (self (n / 2))) );
               ])))

let ty_roundtrip_value =
  QCheck.Test.make ~name:"ty wire roundtrip" ~count:300 (QCheck.make ty_gen)
    (fun t ->
      match Ty.of_value (Ty.to_value t) with
      | Ok t' -> Ty.equal t t'
      | Error _ -> false)

let ty_roundtrip_syntax =
  QCheck.Test.make ~name:"ty parses its own printing" ~count:300 (QCheck.make ty_gen)
    (fun t ->
      match Parser.ty (Ty.to_string t) with
      | Ok t' -> Ty.equal t t'
      | Error _ -> false)

(* --- Interfaces --- *)

let sig_ name params ret = { Interface.meth = name; params; ret }

let test_interface_build () =
  let i =
    Interface.make ~name:"I"
      [ sig_ "A" [ ("x", Ty.Tint) ] Ty.Tint; sig_ "B" [] Ty.Tunit ]
  in
  Alcotest.(check (list string)) "methods" [ "A"; "B" ] (Interface.method_names i);
  Alcotest.(check bool) "mem" true (Interface.mem i "A");
  Alcotest.(check bool) "not mem" false (Interface.mem i "C");
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Interface.make: duplicate method names") (fun () ->
      ignore (Interface.make ~name:"I" [ sig_ "A" [] Ty.Tunit; sig_ "A" [] Ty.Tunit ]))

let test_interface_merge_precedence () =
  let a = Interface.make ~name:"A" [ sig_ "M" [ ("x", Ty.Tint) ] Ty.Tint ] in
  let b =
    Interface.make ~name:"B"
      [ sig_ "M" [] Ty.Tunit; sig_ "N" [] Ty.Tunit ]
  in
  let m = Interface.merge a b in
  Alcotest.(check string) "keeps left name" "A" (Interface.name m);
  Alcotest.(check (list string)) "union" [ "M"; "N" ] (Interface.method_names m);
  (* The derived class's definition of M wins (§2.1.1). *)
  (match Interface.find m "M" with
  | Some s -> Alcotest.(check int) "left signature wins" 1 (List.length s.Interface.params)
  | None -> Alcotest.fail "M missing");
  (* Merge is idempotent. *)
  Alcotest.check iface_t "idempotent" m (Interface.merge m b)

let test_interface_add_replaces () =
  let i = Interface.make ~name:"I" [ sig_ "M" [] Ty.Tunit ] in
  let i = Interface.add i (sig_ "M" [ ("x", Ty.Tint) ] Ty.Tint) in
  match Interface.find i "M" with
  | Some s -> Alcotest.(check int) "replaced" 1 (List.length s.Interface.params)
  | None -> Alcotest.fail "M missing"

let test_check_call () =
  let i = Interface.make ~name:"I" [ sig_ "M" [ ("x", Ty.Tint); ("y", Ty.Tstr) ] Ty.Tunit ] in
  Alcotest.(check bool) "ok" true
    (Interface.check_call i ~meth:"M" ~args:[ Value.Int 1; Value.Str "a" ] = Ok ());
  Alcotest.(check bool) "arity" true
    (Result.is_error (Interface.check_call i ~meth:"M" ~args:[ Value.Int 1 ]));
  Alcotest.(check bool) "type" true
    (Result.is_error
       (Interface.check_call i ~meth:"M" ~args:[ Value.Str "a"; Value.Str "b" ]));
  Alcotest.(check bool) "unknown" true
    (Result.is_error (Interface.check_call i ~meth:"Z" ~args:[]))

let test_interface_wire_roundtrip () =
  let i =
    Interface.make ~name:"Counter"
      [
        sig_ "Increment" [ ("d", Ty.Tint) ] Ty.Tint;
        sig_ "Get" [] Ty.Tint;
        sig_ "Describe" [ ("opts", Ty.Trecord [ ("verbose", Ty.Tbool) ]) ] Ty.Tstr;
      ]
  in
  match Interface.of_value (Interface.to_value i) with
  | Ok i' -> Alcotest.check iface_t "roundtrip" i i'
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

(* --- Parser --- *)

let test_parse_simple () =
  let src = "interface Counter { Increment(d: int): int; Get(): int; Reset(); }" in
  match Parser.interface src with
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Parser.pp_error e)
  | Ok i ->
      Alcotest.(check string) "name" "Counter" (Interface.name i);
      Alcotest.(check (list string)) "methods" [ "Increment"; "Get"; "Reset" ]
        (Interface.method_names i);
      (match Interface.find i "Reset" with
      | Some s -> Alcotest.check ty_t "implicit unit return" Ty.Tunit s.Interface.ret
      | None -> Alcotest.fail "Reset missing")

let test_parse_complex_types () =
  let src =
    "interface X {\n\
     // a comment\n\
     F(a: list<record{x: int, y: opt<str>}>, b: loid): binding;\n\
     }"
  in
  match Parser.interface src with
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Parser.pp_error e)
  | Ok i -> (
      match Interface.find i "F" with
      | Some s ->
          Alcotest.check ty_t "param type"
            (Ty.Tlist (Ty.Trecord [ ("x", Ty.Tint); ("y", Ty.Topt Ty.Tstr) ]))
            (snd (List.hd s.Interface.params));
          Alcotest.check ty_t "return" Ty.Tbinding s.Interface.ret
      | None -> Alcotest.fail "F missing")

let test_parse_file_multiple () =
  let src = "interface A { M(); } interface B { N(); };" in
  match Parser.file src with
  | Ok [ a; b ] ->
      Alcotest.(check string) "first" "A" (Interface.name a);
      Alcotest.(check string) "second" "B" (Interface.name b)
  | Ok l -> Alcotest.failf "expected 2 interfaces, got %d" (List.length l)
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Parser.pp_error e)

let test_parse_errors_positioned () =
  match Parser.interface "interface A {\n  M(x int);\n}" with
  | Ok _ -> Alcotest.fail "should not parse"
  | Error e ->
      Alcotest.(check int) "line" 2 e.Parser.line;
      Alcotest.(check bool) "column sane" true (e.Parser.col > 0)

let test_parse_rejects () =
  List.iter
    (fun src ->
      match Parser.interface src with
      | Ok _ -> Alcotest.failf "accepted %S" src
      | Error _ -> ())
    [
      "";
      "interface { M(); }";
      "interface A { M() }";
      "interface A { M(): nosuchtype; }";
      "interface A { M(); } trailing";
      "interface A { M(x: list<int); }";
      "interface A { M(); M(); }";
      "interface A { 3(); }";
    ]

let test_pp_parse_roundtrip () =
  let i =
    Interface.make ~name:"RoundTrip"
      [
        sig_ "A" [ ("x", Ty.Tlist (Ty.Topt Ty.Tloid)) ] Ty.Tany;
        sig_ "B" [ ("r", Ty.Trecord [ ("f", Ty.Tfloat) ]) ] Ty.Tunit;
      ]
  in
  let printed = Format.asprintf "%a" Interface.pp i in
  match Parser.interface printed with
  | Ok i' -> Alcotest.check iface_t "pp then parse" i i'
  | Error e -> Alcotest.failf "reparse of %S: %s" printed (Format.asprintf "%a" Parser.pp_error e)

let iface_gen =
  QCheck.Gen.(
    let meth_name i = Printf.sprintf "M%d" i in
    map
      (fun sigs ->
        Interface.make ~name:"Gen"
          (List.mapi
             (fun i (params, ret) ->
               {
                 Interface.meth = meth_name i;
                 params = List.mapi (fun j t -> (Printf.sprintf "p%d" j, t)) params;
                 ret;
               })
             sigs))
      (list_size (0 -- 5) (pair (list_size (0 -- 3) ty_gen) ty_gen)))

let interface_pp_parse_roundtrip =
  QCheck.Test.make ~name:"interface pp/parse roundtrip" ~count:100
    (QCheck.make ~print:(Format.asprintf "%a" Interface.pp) iface_gen)
    (fun i ->
      match Parser.interface (Format.asprintf "%a" Interface.pp i) with
      | Ok i' -> Interface.equal i i'
      | Error _ -> false)

let interface_wire_roundtrip_prop =
  QCheck.Test.make ~name:"interface wire roundtrip (random)" ~count:100
    (QCheck.make iface_gen)
    (fun i ->
      match Interface.of_value (Interface.to_value i) with
      | Ok i' -> Interface.equal i i'
      | Error _ -> false)

(* --- MPL front-end (the paper's second IDL) --- *)

module Mpl = Legion_idl.Mpl

let test_mpl_simple () =
  let src =
    "mentat class Counter {\n     \tint Increment(int d);\n     \tint Get();\n     \tvoid Reset();\n     };"
  in
  match Mpl.interface src with
  | Error e -> Alcotest.failf "mpl: %s" (Format.asprintf "%a" Mpl.pp_error e)
  | Ok i ->
      Alcotest.(check string) "name" "Counter" (Interface.name i);
      Alcotest.(check (list string)) "methods" [ "Increment"; "Get"; "Reset" ]
        (Interface.method_names i);
      (match Interface.find i "Reset" with
      | Some s -> Alcotest.check ty_t "void is unit" Ty.Tunit s.Interface.ret
      | None -> Alcotest.fail "Reset missing");
      match Interface.find i "Increment" with
      | Some s ->
          Alcotest.(check (list string)) "param names" [ "d" ]
            (List.map fst s.Interface.params);
          Alcotest.check ty_t "param type" Ty.Tint (snd (List.hd s.Interface.params))
      | None -> Alcotest.fail "Increment missing"

let test_mpl_types_and_qualifiers () =
  let src =
    "mentat class Fancy {\n     /* concurrency qualifiers are Mentat compiler directives */\n     stateless sequence<string> Names(int k);\n     regular double Mean(sequence<float> xs);\n     optional<loid> Find(char * name);\n     any Raw(blob b);\n     }"
  in
  match Mpl.interface src with
  | Error e -> Alcotest.failf "mpl: %s" (Format.asprintf "%a" Mpl.pp_error e)
  | Ok i ->
      let ret m =
        match Interface.find i m with
        | Some s -> s.Interface.ret
        | None -> Alcotest.failf "%s missing" m
      in
      Alcotest.check ty_t "sequence<string>" (Ty.Tlist Ty.Tstr) (ret "Names");
      Alcotest.check ty_t "double" Ty.Tfloat (ret "Mean");
      Alcotest.check ty_t "optional<loid>" (Ty.Topt Ty.Tloid) (ret "Find");
      (match Interface.find i "Find" with
      | Some s -> Alcotest.check ty_t "char* is str" Ty.Tstr (snd (List.hd s.Interface.params))
      | None -> Alcotest.fail "Find missing");
      Alcotest.check ty_t "any" Ty.Tany (ret "Raw")

let test_mpl_file_multiple () =
  let src = "mentat class A { void M(); };\nmentat class B { int N(); }" in
  match Mpl.file src with
  | Ok [ a; b ] ->
      Alcotest.(check string) "A" "A" (Interface.name a);
      Alcotest.(check string) "B" "B" (Interface.name b)
  | Ok l -> Alcotest.failf "expected 2, got %d" (List.length l)
  | Error e -> Alcotest.failf "mpl: %s" (Format.asprintf "%a" Mpl.pp_error e)

let test_mpl_rejects () =
  List.iter
    (fun src ->
      match Mpl.interface src with
      | Ok _ -> Alcotest.failf "accepted %S" src
      | Error _ -> ())
    [
      "";
      "class A { void M(); }";
      "mentat class A { void M() }";
      "mentat class A { nosuchtype M(); }";
      "mentat class A { void M(); } junk";
      "mentat class A { void M(); void M(); }";
      "mentat class A { /* unterminated";
    ]

let test_mpl_equivalent_to_idl () =
  (* The two front-ends produce identical interfaces for equivalent
     declarations. *)
  let from_mpl =
    Mpl.interface
      "mentat class Counter { int Increment(int d); int Get(); void Reset(); }"
  in
  let from_idl =
    Parser.interface
      "interface Counter { Increment(d: int): int; Get(): int; Reset(); }"
  in
  match (from_mpl, from_idl) with
  | Ok a, Ok b -> Alcotest.check iface_t "same interface" b a
  | _ -> Alcotest.fail "one front-end failed"

let () =
  Alcotest.run "idl"
    [
      ( "ty",
        [
          Alcotest.test_case "scalar checks" `Quick test_ty_check_scalars;
          Alcotest.test_case "loid/binding checks" `Quick test_ty_check_loid_binding;
          Alcotest.test_case "compound checks" `Quick test_ty_check_compound;
          QCheck_alcotest.to_alcotest ty_roundtrip_value;
          QCheck_alcotest.to_alcotest ty_roundtrip_syntax;
        ] );
      ( "interface",
        [
          Alcotest.test_case "build" `Quick test_interface_build;
          Alcotest.test_case "merge precedence" `Quick test_interface_merge_precedence;
          Alcotest.test_case "add replaces" `Quick test_interface_add_replaces;
          Alcotest.test_case "check_call" `Quick test_check_call;
          Alcotest.test_case "wire roundtrip" `Quick test_interface_wire_roundtrip;
        ] );
      ( "mpl",
        [
          Alcotest.test_case "simple class" `Quick test_mpl_simple;
          Alcotest.test_case "types and qualifiers" `Quick test_mpl_types_and_qualifiers;
          Alcotest.test_case "multiple classes" `Quick test_mpl_file_multiple;
          Alcotest.test_case "rejects malformed input" `Quick test_mpl_rejects;
          Alcotest.test_case "front-ends agree" `Quick test_mpl_equivalent_to_idl;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple interface" `Quick test_parse_simple;
          Alcotest.test_case "complex types" `Quick test_parse_complex_types;
          Alcotest.test_case "multiple interfaces" `Quick test_parse_file_multiple;
          Alcotest.test_case "errors carry position" `Quick test_parse_errors_positioned;
          Alcotest.test_case "rejects malformed input" `Quick test_parse_rejects;
          Alcotest.test_case "pp/parse roundtrip" `Quick test_pp_parse_roundtrip;
          QCheck_alcotest.to_alcotest interface_pp_parse_roundtrip;
          QCheck_alcotest.to_alcotest interface_wire_roundtrip_prop;
        ] );
    ]
