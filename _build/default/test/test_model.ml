(* Model-based property test: random lifecycle histories against a
   reference model.

   The system under test is a booted Legion with k counter objects; the
   model is a plain int array. Operations — increment, read-and-check,
   deactivate, migrate — are generated randomly; after every read the
   system must agree with the model. This exercises the full stack
   (binding resolution, activation, state save/restore, migration,
   stale-binding recovery) under arbitrary interleavings. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module System = Legion.System
module Api = Legion.Api
module H = Helpers

type op =
  | Inc of int * int  (* object index, delta *)
  | Read of int
  | Deactivate of int
  | Migrate of int * int  (* object index, destination magistrate index *)
  | Crash of int  (* checkpoint, then crash object i's host *)

let pp_op = function
  | Inc (i, d) -> Printf.sprintf "Inc(%d,%d)" i d
  | Read i -> Printf.sprintf "Read(%d)" i
  | Deactivate i -> Printf.sprintf "Deact(%d)" i
  | Migrate (i, m) -> Printf.sprintf "Migrate(%d->%d)" i m
  | Crash i -> Printf.sprintf "Crash(%d)" i

let n_objects = 4
let n_sites = 2

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun i d -> Inc (i, 1 + (abs d mod 9))) (int_bound (n_objects - 1)) int);
        (3, map (fun i -> Read i) (int_bound (n_objects - 1)));
        (2, map (fun i -> Deactivate i) (int_bound (n_objects - 1)));
        ( 1,
          map2
            (fun i m -> Migrate (i, abs m mod n_sites))
            (int_bound (n_objects - 1))
            int );
        (1, map (fun i -> Crash i) (int_bound (n_objects - 1)));
      ])

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (1 -- 25) op_gen)

(* Find which magistrate currently holds [loid]'s OPR. *)
let holder sys ctx loid =
  List.find_opt
    (fun m ->
      match Api.call sys ctx ~dst:m ~meth:"ListObjects" ~args:[] with
      | Ok (Value.List vs) ->
          List.exists
            (fun v ->
              match Loid.of_value v with Ok l -> Loid.equal l loid | _ -> false)
            vs
      | _ -> false)
    (System.magistrates sys)

let run_history ops =
  let sys =
    H.register_counter_unit ();
    Legion.System.boot ~seed:101L ~sites:[ ("m0", 3); ("m1", 3) ] ()
  in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let objects = Array.init n_objects (fun _ -> Api.create_object_exn sys ctx ~cls ()) in
  let model = Array.make n_objects 0 in
  let ok = ref true in
  List.iter
    (fun op ->
      if !ok then
        match op with
        | Inc (i, d) -> (
            match
              Api.call sys ctx ~dst:objects.(i) ~meth:"Increment"
                ~args:[ Value.Int d ]
            with
            | Ok (Value.Int v) ->
                model.(i) <- model.(i) + d;
                if v <> model.(i) then ok := false
            | Ok _ | Error _ -> ok := false)
        | Read i -> (
            match Api.call sys ctx ~dst:objects.(i) ~meth:"Get" ~args:[] with
            | Ok (Value.Int v) -> if v <> model.(i) then ok := false
            | Ok _ | Error _ -> ok := false)
        | Deactivate i -> (
            match holder sys ctx objects.(i) with
            | Some m ->
                (* A deactivation may race nothing here (synchronous
                   driver), so it must succeed unless already inert. *)
                ignore
                  (Api.call sys ctx ~dst:m ~meth:"Deactivate"
                     ~args:[ Loid.to_value objects.(i) ])
            | None -> ok := false)
        | Migrate (i, dst) -> (
            match holder sys ctx objects.(i) with
            | Some m ->
                let target = List.nth (System.magistrates sys) dst in
                if not (Loid.equal m target) then
                  ignore
                    (Api.call sys ctx ~dst:m ~meth:"Move"
                       ~args:[ Loid.to_value objects.(i); Loid.to_value target ])
            | None -> ok := false)
        | Crash i -> (
            (* Checkpoint everything first (so the model stays exact),
               then crash the host the object runs on — if it is active
               and not sharing a host with site infrastructure. The host
               reboots immediately so later placements can reuse it. *)
            ignore (System.checkpoint_all sys);
            match Runtime.find_proc (System.rt sys) objects.(i) with
            | None -> () (* already inert; the checkpoint was the crash drill *)
            | Some p ->
                let h = Runtime.proc_host p in
                let infra =
                  List.map
                    (fun s -> List.hd s.System.net_hosts)
                    (System.sites sys)
                in
                if not (List.mem h infra) then begin
                  Runtime.crash_host (System.rt sys) h;
                  Legion_net.Network.set_host_up (System.net sys) h true
                end))
    ops;
  (* Final audit: every object must agree with the model. *)
  if !ok then
    Array.iteri
      (fun i loid ->
        match Api.call sys ctx ~dst:loid ~meth:"Get" ~args:[] with
        | Ok (Value.Int v) -> if v <> model.(i) then ok := false
        | Ok _ | Error _ -> ok := false)
      objects;
  !ok

let model_property =
  QCheck.Test.make ~name:"random lifecycle histories agree with the model"
    ~count:30 ops_arbitrary run_history

(* A handful of directed histories that were interesting during
   development, pinned as regression cases. *)
let directed_cases =
  [
    ("inc then migrate then read", [ Inc (0, 5); Migrate (0, 1); Read 0 ]);
    ("deactivate twice", [ Inc (1, 2); Deactivate 1; Deactivate 1; Read 1 ]);
    ( "migrate ping-pong",
      [ Inc (2, 3); Migrate (2, 1); Migrate (2, 0); Migrate (2, 1); Read 2 ] );
    ( "interleaved objects",
      [ Inc (0, 1); Inc (1, 2); Deactivate 0; Inc (1, 1); Read 0; Read 1 ] );
    ( "migrate inert object",
      [ Inc (3, 4); Deactivate 3; Migrate (3, 1); Read 3 ] );
  ]

let directed_tests =
  List.map
    (fun (name, ops) ->
      Alcotest.test_case name `Quick (fun () ->
          Alcotest.(check bool) name true (run_history ops)))
    directed_cases

let () =
  Alcotest.run "model"
    [
      ("directed", directed_tests);
      ("random", [ QCheck_alcotest.to_alcotest model_property ]);
    ]
