(* Tests for the discrete-event engine. *)

module Engine = Legion_sim.Engine

let test_time_ordering () =
  let sim = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule sim ~delay:3.0 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule sim ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule sim ~delay:2.0 (fun () -> log := 2 :: !log));
  Engine.run sim;
  Alcotest.(check (list int)) "fires in time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now sim)

let test_same_time_fifo () =
  let sim = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule sim ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run sim;
  Alcotest.(check (list int)) "FIFO at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_nested_scheduling () =
  let sim = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule sim ~delay:1.0 (fun () ->
         log := "a" :: !log;
         ignore (Engine.schedule sim ~delay:0.5 (fun () -> log := "c" :: !log))));
  ignore (Engine.schedule sim ~delay:1.2 (fun () -> log := "b" :: !log));
  Engine.run sim;
  Alcotest.(check (list string)) "nested event interleaves" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_negative_delay_clamped () =
  let sim = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule sim ~delay:(-5.0) (fun () -> fired := true));
  Engine.run sim;
  Alcotest.(check bool) "fires now" true !fired;
  Alcotest.(check (float 1e-9)) "clock unmoved" 0.0 (Engine.now sim)

let test_cancel () =
  let sim = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule sim ~delay:1.0 (fun () -> fired := true) in
  Alcotest.(check int) "pending" 1 (Engine.pending sim);
  Engine.cancel h;
  Alcotest.(check bool) "marked cancelled" true (Engine.is_cancelled h);
  Alcotest.(check int) "not pending" 0 (Engine.pending sim);
  Engine.run sim;
  Alcotest.(check bool) "never fires" false !fired;
  (* Cancelling twice is fine. *)
  Engine.cancel h

let test_cancel_from_event () =
  let sim = Engine.create () in
  let fired = ref false in
  let h = ref None in
  ignore
    (Engine.schedule sim ~delay:1.0 (fun () ->
         match !h with Some h -> Engine.cancel h | None -> ()));
  h := Some (Engine.schedule sim ~delay:2.0 (fun () -> fired := true));
  Engine.run sim;
  Alcotest.(check bool) "cancelled later event skipped" false !fired

let test_run_until () =
  let sim = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule sim ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule sim ~delay:2.0 (fun () -> log := 2 :: !log));
  ignore (Engine.schedule sim ~delay:3.0 (fun () -> log := 3 :: !log));
  Engine.run ~until:2.0 sim;
  (* Events at exactly [until] fire; later ones wait. *)
  Alcotest.(check (list int)) "fired through until" [ 1; 2 ] (List.rev !log);
  Alcotest.(check int) "one pending" 1 (Engine.pending sim);
  Engine.run sim;
  Alcotest.(check (list int)) "resumes" [ 1; 2; 3 ] (List.rev !log)

let test_max_events () =
  let sim = Engine.create () in
  let n = ref 0 in
  for _ = 1 to 10 do
    ignore (Engine.schedule sim ~delay:1.0 (fun () -> incr n))
  done;
  Engine.run ~max_events:4 sim;
  Alcotest.(check int) "bounded" 4 !n;
  Alcotest.(check int) "fired counter" 4 (Engine.events_fired sim);
  Engine.run sim;
  Alcotest.(check int) "rest fire" 10 !n

let test_step () =
  let sim = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step sim);
  ignore (Engine.schedule sim ~delay:1.0 (fun () -> ()));
  Alcotest.(check bool) "step fires" true (Engine.step sim);
  Alcotest.(check bool) "then empty" false (Engine.step sim)

let test_schedule_at_past_clamped () =
  let sim = Engine.create () in
  ignore (Engine.schedule sim ~delay:5.0 (fun () -> ()));
  Engine.run sim;
  let fired_at = ref 0.0 in
  ignore (Engine.schedule_at sim ~time:1.0 (fun () -> fired_at := Engine.now sim));
  Engine.run sim;
  Alcotest.(check (float 1e-9)) "clamped to now" 5.0 !fired_at

let monotonic_clock =
  QCheck.Test.make ~name:"clock is monotonic over random schedules" ~count:100
    QCheck.(small_list (float_range 0.0 10.0))
    (fun delays ->
      let sim = Engine.create () in
      let ok = ref true in
      let last = ref 0.0 in
      List.iter
        (fun d ->
          ignore
            (Engine.schedule sim ~delay:d (fun () ->
                 if Engine.now sim < !last then ok := false;
                 last := Engine.now sim)))
        delays;
      Engine.run sim;
      !ok)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_time_ordering;
          Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "negative delay clamps" `Quick test_negative_delay_clamped;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel from event" `Quick test_cancel_from_event;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "max events" `Quick test_max_events;
          Alcotest.test_case "step" `Quick test_step;
          Alcotest.test_case "past schedule clamps" `Quick test_schedule_at_past_clamped;
          QCheck_alcotest.to_alcotest monotonic_clock;
        ] );
    ]
