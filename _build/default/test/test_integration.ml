(* Whole-system integration tests under churn and failure injection:
   host crashes (recovery from last OPR), lossy networks, many objects
   across jurisdictions, and the wildcard checks that hold the paper's
   story together end to end. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Network = Legion_net.Network
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Well_known = Legion_core.Well_known
module System = Legion.System
module Api = Legion.Api
module H = Helpers

let test_host_crash_recovery () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let site0 = System.site sys 0 in
  (* Place the object on a known host, away from the client, the
     magistrate and the binding agent (all on host 0 of the site). *)
  let victim_hostobj = List.nth site0.System.host_objects 2 in
  let victim_net = List.nth site0.System.net_hosts 2 in
  let loid =
    Api.create_object_exn sys ctx ~cls ~eager:true
      ~magistrate:site0.System.magistrate ~host:victim_hostobj ()
  in
  ignore (Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 3 ]);
  (* Checkpoint: deactivate then touch it back to life so the OPR holds 3. *)
  ignore
    (Api.call_exn sys ctx ~dst:site0.System.magistrate ~meth:"Deactivate"
       ~args:[ Loid.to_value loid ]);
  Alcotest.(check int) "alive again with 3" 3
    (H.int_exn (Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[]));
  (* The object gains unsaved state, then its (current) host crashes. *)
  ignore (Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 100 ]);
  let current_host =
    match Runtime.find_proc (System.rt sys) loid with
    | Some p -> Runtime.proc_host p
    | None -> Alcotest.fail "object inactive before crash"
  in
  ignore victim_net;
  Runtime.crash_host (System.rt sys) current_host;
  (* The next reference times out on the dead address, rebinds, and the
     magistrate reactivates from the last OPR on a surviving host:
     unsaved state (the +100) is lost, checkpointed state survives. *)
  let v = Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[] in
  Alcotest.(check int) "recovered from last OPR" 3 (H.int_exn v);
  (match Runtime.find_proc (System.rt sys) loid with
  | Some p ->
      Alcotest.(check bool) "moved off the dead host" true
        (Runtime.proc_host p <> victim_net)
  | None -> Alcotest.fail "not active after recovery")

let test_lossy_network () =
  (* 2% message loss: timeouts + rebind-retry must still complete every
     operation. *)
  let sys =
    Helpers.register_counter_unit ();
    Legion.System.boot ~seed:7L
      ~rt_config:{ Runtime.default_config with call_timeout = 0.5; max_rebinds = 5 }
      ~sites:[ ("a", 3); ("b", 3) ]
      ()
  in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls ~eager:true () in
  Network.set_drop_rate (System.net sys) 0.02;
  let ok = ref 0 in
  let attempts = 50 in
  for _ = 1 to attempts do
    match Api.call sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 1 ] with
    | Ok _ -> incr ok
    | Error _ -> ()
  done;
  (* With retries, the vast majority must succeed. *)
  Alcotest.(check bool)
    (Printf.sprintf "most calls succeed (%d/%d)" !ok attempts)
    true
    (!ok >= attempts * 8 / 10);
  (* And the counter equals exactly the number of successful replies
     only if no retry double-applied; Increment is not idempotent, so
     the counter may exceed [ok] — but never be below it. *)
  Network.set_drop_rate (System.net sys) 0.0;
  let v = H.int_exn (Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[]) in
  Alcotest.(check bool) "at-least-once delivery" true (v >= !ok)

let test_many_objects_across_sites () =
  let sys =
    Helpers.register_counter_unit ();
    Legion.System.boot ~sites:[ ("a", 4); ("b", 4); ("c", 4) ] ()
  in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let n = 60 in
  let objs = List.init n (fun _ -> Api.create_object_exn sys ctx ~cls ()) in
  (* Touch every object (activating all of them on demand), twice. *)
  List.iteri
    (fun i o ->
      let v =
        H.int_exn (Api.call_exn sys ctx ~dst:o ~meth:"Increment" ~args:[ Value.Int (i + 1) ])
      in
      Alcotest.(check int) "first touch" (i + 1) v)
    objs;
  List.iteri
    (fun i o ->
      let v = H.int_exn (Api.call_exn sys ctx ~dst:o ~meth:"Get" ~args:[]) in
      Alcotest.(check int) "second touch" (i + 1) v)
    objs;
  (* Placement spread across jurisdictions (round-robin default
     magistrates): every site hosts some objects. *)
  let rt = System.rt sys in
  let sites_used =
    List.sort_uniq compare
      (List.filter_map
         (fun o ->
           Option.map
             (fun p -> Network.site_of (System.net sys) (Runtime.proc_host p))
             (Runtime.find_proc rt o))
         objs)
  in
  Alcotest.(check int) "all three jurisdictions used" 3 (List.length sites_used)

let test_churn_deactivate_loop () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls () in
  let find_holder () =
    List.find_opt
      (fun m ->
        match Api.call sys ctx ~dst:m ~meth:"ListObjects" ~args:[] with
        | Ok (Value.List vs) ->
            List.exists
              (fun v ->
                match Loid.of_value v with Ok l -> Loid.equal l loid | _ -> false)
              vs
        | _ -> false)
      (System.magistrates sys)
  in
  for i = 1 to 10 do
    let v = H.int_exn (Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 1 ]) in
    Alcotest.(check int) (Printf.sprintf "round %d" i) i v;
    match find_holder () with
    | Some m ->
        ignore (Api.call sys ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value loid ])
    | None -> Alcotest.fail "no holder"
  done

let test_migration_then_crash () =
  (* Move the object to site 1, crash its new host, watch it recover
     inside the new jurisdiction. *)
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let m0 = (System.site sys 0).System.magistrate in
  let m1 = (System.site sys 1).System.magistrate in
  let loid = Api.create_object_exn sys ctx ~cls ~magistrate:m0 () in
  ignore (Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 11 ]);
  (match
     Api.call sys ctx ~dst:m0 ~meth:"Move"
       ~args:[ Loid.to_value loid; Loid.to_value m1 ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "move: %s" (Err.to_string e));
  (* Activate at site 1 — explicitly away from the site's first host,
     which carries the Magistrate and Binding Agent: crashing a
     Jurisdiction's (externally-started, §4.2.1) infrastructure takes
     the whole Jurisdiction down, a different scenario than an object
     host crash. *)
  let away =
    Value.Record
      [
        ( "host",
          Value.List
            [ Loid.to_value (List.nth (System.site sys 1).System.host_objects 2) ]
        );
      ]
  in
  (match
     Api.call sys ctx ~dst:m1 ~meth:"Activate" ~args:[ Loid.to_value loid; away ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "activate at site 1: %s" (Err.to_string e));
  ignore (Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[]);
  let host =
    match Runtime.find_proc (System.rt sys) loid with
    | Some p -> Runtime.proc_host p
    | None -> Alcotest.fail "inactive after move"
  in
  Runtime.crash_host (System.rt sys) host;
  let v = H.int_exn (Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[]) in
  Alcotest.(check int) "state preserved across move+crash" 11 v

let test_binding_agent_cache_bound_respected () =
  (* Objects created with a bounded comm cache never exceed it, however
     many distinct destinations they contact. *)
  let sys =
    Helpers.register_counter_unit ();
    Legion.System.boot ~object_cache_capacity:4 ~sites:[ ("a", 3) ] ()
  in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let objs = List.init 12 (fun _ -> Api.create_object_exn sys ctx ~cls ()) in
  List.iter
    (fun o -> ignore (Api.call_exn sys ctx ~dst:o ~meth:"Ping" ~args:[]))
    objs;
  (* The client proc is unbounded, but each created object got capacity
     4; verify on one of them after it makes outbound calls... instead
     check the client's cache grows, then a bounded client. *)
  let bounded = Legion_naming.Cache.create ~capacity:4 () in
  ignore bounded;
  List.iter
    (fun o ->
      match Runtime.find_proc (System.rt sys) o with
      | Some p -> (
          match Legion_naming.Cache.capacity (Runtime.cache_of p) with
          | Some c -> Alcotest.(check int) "configured bound" 4 c
          | None -> Alcotest.fail "object cache unbounded")
      | None -> Alcotest.fail "object inert")
    objs

let test_interface_checks_calls () =
  (* The IDL interface retrieved from the class validates calls
     client-side: a Legion-aware compiler would do this statically. *)
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  match Api.get_interface sys ctx ~cls with
  | Error e -> Alcotest.failf "GetInterface: %s" (Err.to_string e)
  | Ok iface ->
      Alcotest.(check bool) "valid call passes" true
        (Legion_idl.Interface.check_call iface ~meth:"Increment"
           ~args:[ Value.Int 1 ]
        = Ok ());
      Alcotest.(check bool) "wrong arity caught" true
        (Result.is_error
           (Legion_idl.Interface.check_call iface ~meth:"Increment" ~args:[]));
      Alcotest.(check bool) "wrong type caught" true
        (Result.is_error
           (Legion_idl.Interface.check_call iface ~meth:"Increment"
              ~args:[ Value.Str "x" ]))

let () =
  Alcotest.run "integration"
    [
      ( "faults",
        [
          Alcotest.test_case "host crash recovery from OPR" `Quick
            test_host_crash_recovery;
          Alcotest.test_case "lossy network" `Slow test_lossy_network;
          Alcotest.test_case "migration then crash" `Quick test_migration_then_crash;
        ] );
      ( "scale",
        [
          Alcotest.test_case "many objects across sites" `Slow
            test_many_objects_across_sites;
          Alcotest.test_case "deactivation churn" `Quick test_churn_deactivate_loop;
          Alcotest.test_case "bounded object caches" `Quick
            test_binding_agent_cache_bound_respected;
        ] );
      ( "contracts",
        [ Alcotest.test_case "IDL validates calls" `Quick test_interface_checks_calls ] );
    ]
