test/test_soak.ml: Alcotest Array Helpers Legion Legion_naming Legion_net Legion_rt Legion_sim Legion_util Legion_wire List Printf
