test/test_jurisdiction.ml: Alcotest Gen Helpers Legion Legion_core Legion_naming Legion_rt Legion_store Legion_wire List Option Printf QCheck QCheck_alcotest String
