test/test_core.ml: Alcotest Gen Int64 Legion_core Legion_naming Legion_net Legion_rt Legion_sec Legion_sim Legion_util Legion_wire List Printf QCheck QCheck_alcotest Result String
