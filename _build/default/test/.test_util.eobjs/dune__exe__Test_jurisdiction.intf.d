test/test_jurisdiction.mli:
