test/test_model.ml: Alcotest Array Helpers Legion Legion_naming Legion_net Legion_rt Legion_wire List Printf QCheck QCheck_alcotest String
