test/test_rt.ml: Alcotest Int64 Legion_naming Legion_net Legion_rt Legion_sec Legion_sim Legion_util Legion_wire List Printf Result
