test/test_concurrency.ml: Alcotest Helpers Legion Legion_core Legion_naming Legion_rt Legion_wire List Printf
