test/test_binding.ml: Alcotest Helpers Legion Legion_binding Legion_core Legion_naming Legion_rt Legion_sec Legion_wire List Printf
