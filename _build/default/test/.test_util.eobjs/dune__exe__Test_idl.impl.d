test/test_idl.ml: Alcotest Format Legion_idl Legion_naming Legion_wire List Printf QCheck QCheck_alcotest Result
