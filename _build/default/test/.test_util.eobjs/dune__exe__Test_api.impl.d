test/test_api.ml: Alcotest Helpers Int64 Legion Legion_core Legion_naming Legion_net Legion_rt Legion_wire String
