test/test_naming.mli:
