test/test_integration.ml: Alcotest Helpers Legion Legion_core Legion_idl Legion_naming Legion_net Legion_rt Legion_wire List Option Printf Result
