test/test_trace.ml: Alcotest Format Helpers Int64 Legion Legion_naming Legion_obs Legion_rt Legion_util Legion_wire List Option String Sys
