test/test_naming.ml: Alcotest Format Int64 Legion_naming Legion_util List QCheck QCheck_alcotest
