test/test_util.ml: Alcotest Array Float Format Gen Int64 Legion_util List Printf QCheck QCheck_alcotest String
