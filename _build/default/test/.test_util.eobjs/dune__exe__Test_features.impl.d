test/test_features.ml: Alcotest Helpers Int64 Legion Legion_core Legion_ctx Legion_idl Legion_naming Legion_net Legion_repl Legion_rt Legion_sched Legion_sec Legion_wire List Printf Stdlib
