test/test_security.ml: Alcotest Helpers Int64 Legion Legion_core Legion_naming Legion_rt Legion_sec Legion_wire List Option Printf String
