test/test_growth.ml: Alcotest Helpers Int64 Legion Legion_core Legion_host Legion_naming Legion_net Legion_rt Legion_wire List
