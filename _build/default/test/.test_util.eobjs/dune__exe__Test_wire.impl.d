test/test_wire.ml: Alcotest Buffer Bytes Char Gen Int64 Legion_wire List Printf QCheck QCheck_alcotest Result String
