test/test_sim.ml: Alcotest Legion_sim List QCheck QCheck_alcotest
