test/test_objects.ml: Alcotest Hashtbl Helpers Legion Legion_core Legion_naming Legion_objects Legion_rt Legion_wire List Printf QCheck QCheck_alcotest Queue String
