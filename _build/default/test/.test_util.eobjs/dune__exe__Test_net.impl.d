test/test_net.ml: Alcotest Array Legion_net Legion_obs Legion_sim Legion_util Legion_wire List Printf
