test/test_net.ml: Alcotest Legion_net Legion_sim Legion_util Legion_wire
