(* End-to-end tests of the bootstrapped system: the §4.2 creation
   mechanism, the §4.1 binding mechanism (including activation on
   reference), and the class relations of §2.1. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Well_known = Legion_core.Well_known
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module System = Legion.System
module Api = Legion.Api
module H = Helpers

let test_boot () =
  let sys = H.boot_two_sites () in
  Alcotest.(check int) "two sites" 2 (List.length (System.sites sys));
  Alcotest.(check int) "six hosts" 6
    (Legion_net.Network.host_count (System.net sys));
  (* The five core classes answer Ping. *)
  let ctx = System.client sys () in
  List.iter
    (fun cls ->
      match Api.call sys ctx ~dst:cls ~meth:"Ping" ~args:[] with
      | Ok Value.Unit -> ()
      | Ok v -> Alcotest.failf "Ping: unexpected %s" (Value.to_string v)
      | Error e -> Alcotest.failf "Ping %s: %s" (Loid.to_string cls) (Err.to_string e))
    Well_known.core_classes

let test_core_abstract () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  (* Core classes are Abstract: Create is refused (§2.1.2). *)
  match
    Api.create_object sys ctx ~cls:Well_known.legion_object ()
  with
  | Error (Err.Refused _) -> ()
  | Error e -> Alcotest.failf "expected Refused, got %s" (Err.to_string e)
  | Ok _ -> Alcotest.fail "abstract class created an instance"

let test_derive_and_create () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  Alcotest.(check bool) "class loid is a class" true (Loid.is_class cls);
  (* Lazy create: object starts Inert. *)
  let loid = Api.create_object_exn sys ctx ~cls () in
  Alcotest.(check bool) "instance is not a class" false (Loid.is_class loid);
  Alcotest.check H.loid_t "instance belongs to its class" cls
    (Loid.responsible_class loid);
  (* No process exists yet. *)
  Alcotest.(check bool) "inert after lazy create" true
    (Runtime.find_proc (System.rt sys) loid = None);
  (* First reference activates it (Fig. 17): the call goes client ->
     binding agent -> class -> magistrate -> host object -> process. *)
  let v = Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 5 ] in
  Alcotest.(check int) "incremented" 5 (H.int_exn v);
  Alcotest.(check bool) "active after reference" true
    (Runtime.find_proc (System.rt sys) loid <> None);
  let v = Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[] in
  Alcotest.(check int) "state persists across calls" 5 (H.int_exn v)

let test_eager_create () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  match Api.create_object sys ctx ~cls ~eager:true () with
  | Error e -> Alcotest.failf "eager create: %s" (Err.to_string e)
  | Ok (loid, binding) ->
      Alcotest.(check bool) "binding returned" true (binding <> None);
      Alcotest.(check bool) "process live" true
        (Runtime.find_proc (System.rt sys) loid <> None)

let test_deactivate_reactivate () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls () in
  let _ = Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 7 ] in
  (* Find which magistrate holds it, then Deactivate. *)
  let mag = List.hd (System.magistrates sys) in
  (match Api.call sys ctx ~dst:mag ~meth:"Deactivate" ~args:[ Loid.to_value loid ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deactivate: %s" (Err.to_string e));
  Alcotest.(check bool) "inert after deactivate" true
    (Runtime.find_proc (System.rt sys) loid = None);
  (* Invoking again transparently reactivates with saved state. The
     client's cached binding is stale; the §4.1.4 rebind path handles
     it. *)
  let v = Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[] in
  Alcotest.(check int) "state survived deactivation" 7 (H.int_exn v)

let test_get_interface () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  match Api.get_interface sys ctx ~cls with
  | Error e -> Alcotest.failf "GetInterface: %s" (Err.to_string e)
  | Ok iface ->
      Alcotest.(check bool) "has Increment" true
        (Legion_idl.Interface.mem iface "Increment");
      (* Inherited from LegionObject's interface by the Derive merge. *)
      Alcotest.(check bool) "has MayI" true (Legion_idl.Interface.mem iface "MayI")

let test_subclass_of_subclass () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let counter_cls = H.make_counter_class sys ctx () in
  (* Derive a subclass of Counter; instances inherit the counter unit. *)
  let sub = Api.derive_class_exn sys ctx ~parent:counter_cls ~name:"SubCounter" () in
  let loid = Api.create_object_exn sys ctx ~cls:sub () in
  let v = Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 3 ] in
  Alcotest.(check int) "inherited implementation works" 3 (H.int_exn v)

let test_delete () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls () in
  let _ = Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 1 ] in
  (match Api.call sys ctx ~dst:cls ~meth:"Delete" ~args:[ Loid.to_value loid ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "delete: %s" (Err.to_string e));
  Alcotest.(check bool) "process gone" true
    (Runtime.find_proc (System.rt sys) loid = None);
  (* Future binding attempts fail definitively (§3.8 Delete). *)
  match Api.call sys ctx ~dst:loid ~meth:"Get" ~args:[] with
  | Ok _ -> Alcotest.fail "deleted object answered"
  | Error _ -> ()

let test_clients_across_sites () =
  let sys = H.boot_two_sites () in
  let ctx0 = System.client sys ~site:0 () in
  let ctx1 = System.client sys ~site:1 () in
  let cls = H.make_counter_class sys ctx0 () in
  let loid = Api.create_object_exn sys ctx0 ~cls () in
  let _ = Api.call_exn sys ctx0 ~dst:loid ~meth:"Increment" ~args:[ Value.Int 2 ] in
  (* A client at the other site resolves through its own Binding Agent. *)
  let v = Api.call_exn sys ctx1 ~dst:loid ~meth:"Increment" ~args:[ Value.Int 3 ] in
  Alcotest.(check int) "both sites reach the object" 5 (H.int_exn v)

let () =
  Alcotest.run "system"
    [
      ( "bootstrap",
        [
          Alcotest.test_case "boot two sites" `Quick test_boot;
          Alcotest.test_case "core classes are abstract" `Quick test_core_abstract;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "derive, create, activate on reference" `Quick
            test_derive_and_create;
          Alcotest.test_case "eager create" `Quick test_eager_create;
          Alcotest.test_case "deactivate then reactivate" `Quick
            test_deactivate_reactivate;
          Alcotest.test_case "interface inheritance" `Quick test_get_interface;
          Alcotest.test_case "subclass of subclass" `Quick test_subclass_of_subclass;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "cross-site clients" `Quick test_clients_across_sites;
        ] );
    ]
