(* Tests for the core object model machinery: OPRs, implementation-unit
   composition, the object-mandatory base unit, and Convert helpers. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Engine = Legion_sim.Engine
module Network = Legion_net.Network
module Counter = Legion_util.Counter
module Prng = Legion_util.Prng
module Env = Legion_sec.Env
module Policy = Legion_sec.Policy
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Impl = Legion_core.Impl
module Opr = Legion_core.Opr
module Object_part = Legion_core.Object_part
module Well_known = Legion_core.Well_known
module C = Legion_core.Convert

(* --- OPR --- *)

let test_opr_roundtrip () =
  let opr =
    Opr.make
      ~states:[ ("u1", Value.Int 3); ("u2", Value.Str "s") ]
      ~binding_agent:(Address.singleton (Address.Sim { host = 1; slot = 2 }))
      ~cache_capacity:64 ~kind:"app" ~units:[ "u1"; "u2" ] ()
  in
  match Opr.of_blob (Opr.to_blob opr) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok opr' ->
      Alcotest.(check string) "kind" opr.Opr.kind opr'.Opr.kind;
      Alcotest.(check (list string)) "units" opr.Opr.units opr'.Opr.units;
      Alcotest.(check bool) "states" true
        (List.for_all2
           (fun (n, v) (n', v') -> n = n' && Value.equal v v')
           opr.Opr.states opr'.Opr.states);
      Alcotest.(check (option int)) "capacity" (Some 64) opr'.Opr.cache_capacity;
      Alcotest.(check bool) "agent survives" true
        (match opr'.Opr.binding_agent with Some _ -> true | None -> false)

let test_opr_minimal () =
  let opr = Opr.make ~kind:"app" ~units:[ "only" ] () in
  match Opr.of_blob (Opr.to_blob opr) with
  | Ok opr' ->
      Alcotest.(check bool) "no agent" true (opr'.Opr.binding_agent = None);
      Alcotest.(check (option int)) "no cap" None opr'.Opr.cache_capacity
  | Error e -> Alcotest.failf "roundtrip: %s" e

let test_opr_bad_blob () =
  Alcotest.(check bool) "garbage rejected" true (Result.is_error (Opr.of_blob "junk"))

(* --- Composition fixture --- *)

type fixture = { sim : Engine.t; rt : Runtime.t; host : int }

let make_fixture () =
  let sim = Engine.create () in
  let prng = Prng.create ~seed:1L in
  let registry = Counter.Registry.create () in
  let net = Network.create ~sim ~prng:(Prng.split prng) () in
  let site = Network.add_site net ~name:"s" in
  let host = Network.add_host net ~site ~name:"h" in
  let rt = Runtime.create ~sim ~net ~registry ~prng:(Prng.split prng) () in
  { sim; rt; host }

let loid i = Loid.make ~class_id:60L ~class_specific:(Int64.of_int i) ()

(* Two tiny units that both define "Who" — for precedence tests. *)
let unit_a : Impl.factory =
 fun _ctx ->
  Impl.part
    ~methods:[ ("Who", fun _ _ _ k -> k (Ok (Value.Str "A"))) ]
    ~save:(fun () -> Value.Str "state-a")
    "test.a"

let unit_b : Impl.factory =
 fun _ctx ->
  Impl.part
    ~methods:
      [
        ("Who", fun _ _ _ k -> k (Ok (Value.Str "B")));
        ("OnlyB", fun _ _ _ k -> k (Ok (Value.Str "b")));
      ]
    ~save:(fun () -> Value.Str "state-b")
    "test.b"

let call f proc meth args =
  let client =
    Runtime.spawn f.rt ~host:f.host ~loid:(loid 999) ~kind:"client"
      ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
      ()
  in
  let ctx = { Runtime.rt = f.rt; self = client } in
  let r = ref None in
  Runtime.invoke_address ctx ~address:(Runtime.address_of proc)
    ~dst:(Runtime.proc_loid proc) ~meth ~args ~env:(Env.of_self (loid 999))
    (fun x -> r := Some x);
  Engine.run f.sim;
  Runtime.kill f.rt client;
  match !r with Some x -> x | None -> Alcotest.fail "no reply"

let activate f units =
  Impl.register "test.a" unit_a;
  Impl.register "test.b" unit_b;
  Object_part.register ();
  let opr = Opr.make ~kind:"app" ~units () in
  match Impl.activate f.rt ~host:f.host ~loid:(loid 1) opr with
  | Ok proc -> proc
  | Error msg -> Alcotest.failf "activate: %s" msg

let test_dispatch_precedence () =
  let f = make_fixture () in
  let proc = activate f [ "test.a"; "test.b"; Well_known.unit_object ] in
  (match call f proc "Who" [] with
  | Ok (Value.Str "A") -> ()
  | _ -> Alcotest.fail "first unit must win");
  (match call f proc "OnlyB" [] with
  | Ok (Value.Str "b") -> ()
  | _ -> Alcotest.fail "later unit methods reachable");
  match call f proc "Nope" [] with
  | Error (Err.No_such_method "Nope") -> ()
  | _ -> Alcotest.fail "unknown method must error"

let test_save_state_shape () =
  let f = make_fixture () in
  let proc = activate f [ "test.a"; "test.b"; Well_known.unit_object ] in
  match call f proc "SaveState" [] with
  | Ok (Value.Record fields) ->
      Alcotest.(check (list string)) "per-unit states"
        [ "test.a"; "test.b"; Well_known.unit_object ]
        (List.map fst fields);
      Alcotest.(check bool) "a state" true
        (List.assoc "test.a" fields = Value.Str "state-a")
  | _ -> Alcotest.fail "SaveState must return a record"

let test_get_method_names () =
  let f = make_fixture () in
  let proc = activate f [ "test.a"; Well_known.unit_object ] in
  match call f proc "GetMethodNames" [] with
  | Ok (Value.List names) ->
      let names =
        List.filter_map (function Value.Str s -> Some s | _ -> None) names
      in
      List.iter
        (fun m ->
          Alcotest.(check bool) (m ^ " present") true (List.mem m names))
        [ "SaveState"; "RestoreState"; "Who"; "MayI"; "Iam"; "Ping" ]
  | _ -> Alcotest.fail "GetMethodNames must return a list"

let test_unknown_unit_fails_cleanly () =
  let f = make_fixture () in
  let opr = Opr.make ~kind:"app" ~units:[ "test.nonexistent" ] () in
  (match Impl.activate f.rt ~host:f.host ~loid:(loid 5) opr with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown unit accepted");
  Alcotest.(check bool) "nothing spawned" true
    (Runtime.find_proc f.rt (loid 5) = None)

let test_bad_state_fails_cleanly () =
  let f = make_fixture () in
  Impl.register "test.strict"
    (fun _ctx ->
      Impl.part
        ~restore:(fun _ -> Error "refuse all state")
        "test.strict");
  let opr =
    Opr.make ~kind:"app" ~units:[ "test.strict" ]
      ~states:[ ("test.strict", Value.Unit) ] ()
  in
  (match Impl.activate f.rt ~host:f.host ~loid:(loid 6) opr with
  | Error msg ->
      Alcotest.(check bool) "mentions unit" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "bad state accepted");
  Alcotest.(check bool) "nothing spawned" true
    (Runtime.find_proc f.rt (loid 6) = None)

let test_registered_units_listed () =
  Impl.register "test.listed" (fun _ -> Impl.part "test.listed");
  Alcotest.(check bool) "registry lists it" true
    (List.mem "test.listed" (Impl.registered_units ()))

(* OPR decoding never raises, whatever value shape it is handed. *)
let opr_fuzz_prop =
  QCheck.Test.make ~name:"Opr.of_blob never raises" ~count:300
    QCheck.(string_of_size Gen.(0 -- 80))
    (fun s -> match Opr.of_blob s with Ok _ | Error _ -> true)

(* Property: for any ordering of units that define the same method, the
   first unit in the list answers — the paper's inheritance precedence. *)
let compose_precedence_prop =
  QCheck.Test.make ~name:"first unit wins for any composition order" ~count:30
    QCheck.(list_of_size Gen.(1 -- 5) (int_bound 4))
    (fun unit_ids ->
      QCheck.assume (unit_ids <> []);
      let f = make_fixture () in
      (* Five units, each answering Who with its id. *)
      List.iter
        (fun i ->
          Impl.register
            (Printf.sprintf "test.who%d" i)
            (fun _ctx ->
              Impl.part
                ~methods:
                  [ ("Who", fun _ _ _ k -> k (Ok (Value.Int i))) ]
                (Printf.sprintf "test.who%d" i)))
        [ 0; 1; 2; 3; 4 ];
      Object_part.register ();
      let units =
        List.map (Printf.sprintf "test.who%d") unit_ids @ [ Well_known.unit_object ]
      in
      (* Dedup preserving first occurrence, as Derive does. *)
      let units =
        List.rev
          (List.fold_left
             (fun acc u -> if List.mem u acc then acc else u :: acc)
             [] units)
      in
      let opr = Opr.make ~kind:"app" ~units () in
      match Impl.activate f.rt ~host:f.host ~loid:(loid 77) opr with
      | Error _ -> false
      | Ok proc -> (
          match call f proc "Who" [] with
          | Ok (Value.Int got) -> got = List.hd unit_ids
          | _ -> false))

(* --- Object part: MayI, policy guard --- *)

let test_object_part_identity () =
  let f = make_fixture () in
  let proc = activate f [ Well_known.unit_object ] in
  (match call f proc "Iam" [] with
  | Ok v -> (
      match Loid.of_value v with
      | Ok l -> Alcotest.(check bool) "identity" true (Loid.equal l (loid 1))
      | Error e -> Alcotest.failf "bad Iam: %s" e)
  | Error e -> Alcotest.failf "Iam: %s" (Err.to_string e));
  match call f proc "Ping" [] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "Ping"

let test_policy_guard_denies () =
  let f = make_fixture () in
  Object_part.register ();
  let deny = Policy.Deny_all "locked" in
  let opr =
    Opr.make ~kind:"app"
      ~units:[ Well_known.unit_object ]
      ~states:[ (Well_known.unit_object, Object_part.state_value ~policy:deny ()) ]
      ()
  in
  let proc =
    match Impl.activate f.rt ~host:f.host ~loid:(loid 7) opr with
    | Ok p -> p
    | Error msg -> Alcotest.failf "activate: %s" msg
  in
  (* Guarded methods are refused... *)
  (match call f proc "GetInfo" [] with
  | Error (Err.Refused "locked") -> ()
  | r ->
      Alcotest.failf "expected refusal, got %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  (* ...but MayI/Iam/Ping stay reachable, and MayI reports the denial. *)
  (match call f proc "Ping" [] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "Ping must bypass guard");
  match call f proc "MayI" [ Value.Str "GetInfo" ] with
  | Ok (Value.Bool false) -> ()
  | _ -> Alcotest.fail "MayI must report denial"

let test_policy_survives_save_restore () =
  let f = make_fixture () in
  let proc = activate f [ Well_known.unit_object ] in
  (* Install a restrictive policy, snapshot, restore into a sibling. *)
  (match
     call f proc "SetPolicy" [ Policy.to_value (Policy.Deny_all "frozen") ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "SetPolicy: %s" (Err.to_string e));
  (* SetPolicy of Deny_all instantly locks the object out — even
     SaveState. That is the object implementor's right (§2.4: "users are
     responsible for their own security"). *)
  match call f proc "SaveState" [] with
  | Error (Err.Refused _) -> ()
  | _ -> Alcotest.fail "deny-all must also lock SaveState"

(* --- Convert --- *)

let test_convert_opt_fields () =
  let v = Value.Record [ ("x", Value.List [ Value.Int 3 ]); ("y", Value.List []) ] in
  Alcotest.(check bool) "some" true (C.opt_int_field v "x" = Ok (Some 3));
  Alcotest.(check bool) "none" true (C.opt_int_field v "y" = Ok None);
  Alcotest.(check bool) "absent is none" true (C.opt_int_field v "z" = Ok None);
  Alcotest.(check bool) "bad shape" true
    (Result.is_error (C.opt_int_field (Value.Record [ ("x", Value.Int 1) ]) "x"))

let test_convert_defaults () =
  let v = Value.Record [] in
  Alcotest.(check bool) "bool default" true (C.bool_field ~default:true v "b" = Ok true);
  Alcotest.(check bool) "bool required" true (Result.is_error (C.bool_field v "b"));
  Alcotest.(check bool) "strs default" true
    (C.str_list_field ~default:[ "d" ] v "l" = Ok [ "d" ]);
  Alcotest.(check bool) "loids default" true
    (C.loid_list_field ~default:[] v "l" = Ok [])

let () =
  Alcotest.run "core"
    [
      ( "opr",
        [
          Alcotest.test_case "roundtrip" `Quick test_opr_roundtrip;
          Alcotest.test_case "minimal" `Quick test_opr_minimal;
          Alcotest.test_case "bad blob" `Quick test_opr_bad_blob;
        ] );
      ( "impl",
        [
          Alcotest.test_case "dispatch precedence" `Quick test_dispatch_precedence;
          Alcotest.test_case "SaveState shape" `Quick test_save_state_shape;
          Alcotest.test_case "GetMethodNames" `Quick test_get_method_names;
          Alcotest.test_case "unknown unit fails cleanly" `Quick
            test_unknown_unit_fails_cleanly;
          Alcotest.test_case "bad state fails cleanly" `Quick
            test_bad_state_fails_cleanly;
          QCheck_alcotest.to_alcotest compose_precedence_prop;
          QCheck_alcotest.to_alcotest opr_fuzz_prop;
          Alcotest.test_case "registered units listed" `Quick
            test_registered_units_listed;
        ] );
      ( "object part",
        [
          Alcotest.test_case "identity methods" `Quick test_object_part_identity;
          Alcotest.test_case "policy guard" `Quick test_policy_guard_denies;
          Alcotest.test_case "deny-all locks SaveState" `Quick
            test_policy_survives_save_restore;
        ] );
      ( "convert",
        [
          Alcotest.test_case "optional fields" `Quick test_convert_opt_fields;
          Alcotest.test_case "defaults" `Quick test_convert_defaults;
        ] );
    ]
