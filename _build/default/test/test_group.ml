(* Tests for application-level object groups (the §4.3 "object group"
   the paper leaves to application programmers), plus partition
   behaviour end to end. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Network = Legion_net.Network
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Well_known = Legion_core.Well_known
module Group_part = Legion_repl.Group_part
module System = Legion.System
module Api = Legion.Api
module H = Helpers

let boot () =
  Group_part.register ();
  H.register_counter_unit ();
  Legion.System.boot ~seed:3L
    ~rt_config:{ Runtime.default_config with call_timeout = 0.5 }
    ~sites:[ ("a", 3); ("b", 3); ("c", 3) ]
    ()

type fixture = {
  sys : System.t;
  ctx : Runtime.ctx;
  group : Loid.t;
  members : Loid.t list;
}

let make_group () =
  let sys = boot () in
  let ctx = System.client sys () in
  let counter_cls = H.make_counter_class sys ctx () in
  let group_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Group"
      ~units:[ Group_part.unit_name ] ()
  in
  let group = Api.create_object_exn sys ctx ~cls:group_cls ~eager:true () in
  (* One member per site. *)
  let members =
    List.map
      (fun s ->
        Api.create_object_exn sys ctx ~cls:counter_cls ~eager:true
          ~magistrate:s.System.magistrate ())
      (System.sites sys)
  in
  List.iter
    (fun m ->
      match Api.call sys ctx ~dst:group ~meth:"AddMember" ~args:[ Loid.to_value m ] with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "AddMember: %s" (Err.to_string e))
    members;
  { sys; ctx; group; members }

let group_invoke f meth args =
  Api.call f.sys f.ctx ~dst:f.group ~meth:"Invoke"
    ~args:[ Value.Str meth; Value.List args ]

let member_value f m =
  match Api.call_exn f.sys f.ctx ~dst:m ~meth:"Get" ~args:[] with
  | Value.Int n -> n
  | v -> Alcotest.failf "Get: %s" (Value.to_string v)

let test_group_broadcast () =
  let f = make_group () in
  (match group_invoke f "Increment" [ Value.Int 5 ] with
  | Ok (Value.Record fields) ->
      Alcotest.(check bool) "3 ok" true
        (List.assoc_opt "ok" fields = Some (Value.Int 3));
      Alcotest.(check bool) "first value 5" true
        (List.assoc_opt "value" fields = Some (Value.Int 5))
  | Ok v -> Alcotest.failf "bad reply: %s" (Value.to_string v)
  | Error e -> Alcotest.failf "Invoke: %s" (Err.to_string e));
  (* Every member applied the update — convergent state. *)
  List.iter
    (fun m -> Alcotest.(check int) "member updated" 5 (member_value f m))
    f.members

let test_group_membership () =
  let f = make_group () in
  (match Api.call f.sys f.ctx ~dst:f.group ~meth:"ListMembers" ~args:[] with
  | Ok (Value.List vs) -> Alcotest.(check int) "3 members" 3 (List.length vs)
  | _ -> Alcotest.fail "ListMembers");
  let victim = List.hd f.members in
  (match
     Api.call f.sys f.ctx ~dst:f.group ~meth:"RemoveMember"
       ~args:[ Loid.to_value victim ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "RemoveMember: %s" (Err.to_string e));
  (match Api.call f.sys f.ctx ~dst:f.group ~meth:"ListMembers" ~args:[] with
  | Ok (Value.List vs) -> Alcotest.(check int) "2 members" 2 (List.length vs)
  | _ -> Alcotest.fail "ListMembers");
  (* Adding twice is idempotent. *)
  ignore (Api.call f.sys f.ctx ~dst:f.group ~meth:"AddMember" ~args:[ Loid.to_value victim ]);
  ignore (Api.call f.sys f.ctx ~dst:f.group ~meth:"AddMember" ~args:[ Loid.to_value victim ]);
  match Api.call f.sys f.ctx ~dst:f.group ~meth:"ListMembers" ~args:[] with
  | Ok (Value.List vs) -> Alcotest.(check int) "3 again" 3 (List.length vs)
  | _ -> Alcotest.fail "ListMembers"

let kill_member f m =
  match Runtime.find_proc (System.rt f.sys) m with
  | Some p -> Runtime.crash_host (System.rt f.sys) (Runtime.proc_host p)
  | None -> Alcotest.fail "member inactive"

let test_group_modes_under_failure () =
  let f = make_group () in
  ignore (group_invoke f "Increment" [ Value.Int 1 ]);
  (* Kill one member of three. *)
  kill_member f (List.nth f.members 2);
  (* all-mode: fails (2/3). The dead member's magistrate lives on the
     same crashed host, so it cannot be resurrected. The group only
     learns of the failure after the member's delivery timeout, which
     may exceed the client's own call timeout — either way the client
     sees an error, never a spurious success. *)
  (match group_invoke f "Increment" [ Value.Int 1 ] with
  | Error _ -> ()
  | Ok v -> Alcotest.failf "all-mode should fail: %s" (Value.to_string v));
  System.run f.sys;
  (* quorum-mode: succeeds (2/3). *)
  (match Api.call f.sys f.ctx ~dst:f.group ~meth:"SetMode" ~args:[ Value.Str "quorum" ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "SetMode: %s" (Err.to_string e));
  (match group_invoke f "Increment" [ Value.Int 1 ] with
  | Ok (Value.Record fields) ->
      Alcotest.(check bool) "2 ok" true (List.assoc_opt "ok" fields = Some (Value.Int 2))
  | r ->
      Alcotest.failf "quorum-mode should succeed: %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  (* any-mode trivially succeeds. *)
  ignore (Api.call f.sys f.ctx ~dst:f.group ~meth:"SetMode" ~args:[ Value.Str "any" ]);
  match group_invoke f "Get" [] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "any-mode: %s" (Err.to_string e)

let test_group_empty_refused () =
  let sys = boot () in
  let ctx = System.client sys () in
  let group_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Group"
      ~units:[ Group_part.unit_name ] ()
  in
  let group = Api.create_object_exn sys ctx ~cls:group_cls ~eager:true () in
  match
    Api.call sys ctx ~dst:group ~meth:"Invoke"
      ~args:[ Value.Str "Get"; Value.List [] ]
  with
  | Error (Err.Refused _) -> ()
  | _ -> Alcotest.fail "empty group must refuse"

let test_group_state_survives_deactivation () =
  let f = make_group () in
  ignore
    (Api.call f.sys f.ctx ~dst:f.group ~meth:"SetMode" ~args:[ Value.Str "quorum" ]);
  (* Find the magistrate holding the group object and bounce it. *)
  let holder =
    List.find_opt
      (fun m ->
        match Api.call f.sys f.ctx ~dst:m ~meth:"ListObjects" ~args:[] with
        | Ok (Value.List vs) ->
            List.exists
              (fun v ->
                match Loid.of_value v with
                | Ok l -> Loid.equal l f.group
                | _ -> false)
              vs
        | _ -> false)
      (System.magistrates f.sys)
  in
  (match holder with
  | Some m ->
      ignore
        (Api.call f.sys f.ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value f.group ])
  | None -> Alcotest.fail "no holder");
  (* Members and mode persisted. *)
  (match Api.call f.sys f.ctx ~dst:f.group ~meth:"ListMembers" ~args:[] with
  | Ok (Value.List vs) -> Alcotest.(check int) "members persisted" 3 (List.length vs)
  | _ -> Alcotest.fail "ListMembers after reactivation");
  match group_invoke f "Increment" [ Value.Int 2 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-reactivation invoke: %s" (Err.to_string e)

(* --- End-to-end partition behaviour --- *)

let test_partition_and_heal () =
  let f = make_group () in
  ignore (group_invoke f "Increment" [ Value.Int 1 ]);
  (* Partition site c away; all-mode invocations fail, quorum-mode
     continue (2 of 3 members reachable). *)
  Network.set_partitioned (System.net f.sys) 0 2 true;
  Network.set_partitioned (System.net f.sys) 1 2 true;
  (match group_invoke f "Increment" [ Value.Int 1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "all-mode across a partition should fail");
  ignore (Api.call f.sys f.ctx ~dst:f.group ~meth:"SetMode" ~args:[ Value.Str "quorum" ]);
  (match group_invoke f "Increment" [ Value.Int 1 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "quorum under partition: %s" (Err.to_string e));
  (* Heal: the member behind the partition is stale by two updates —
     the divergence the paper warns application groups must manage. *)
  Network.set_partitioned (System.net f.sys) 0 2 false;
  Network.set_partitioned (System.net f.sys) 1 2 false;
  let v_behind = member_value f (List.nth f.members 2) in
  let v_front = member_value f (List.nth f.members 0) in
  (* The reachable members got the quorum update (and possibly
     duplicates from client retries of the non-idempotent Invoke — the
     at-least-once behaviour the retry machinery implies); the
     partitioned member is strictly behind. *)
  Alcotest.(check bool)
    (Printf.sprintf "partitioned member diverged (%d < %d)" v_behind v_front)
    true (v_behind < v_front)

let () =
  Alcotest.run "group"
    [
      ( "object groups",
        [
          Alcotest.test_case "broadcast keeps members convergent" `Quick
            test_group_broadcast;
          Alcotest.test_case "membership" `Quick test_group_membership;
          Alcotest.test_case "modes under member failure" `Quick
            test_group_modes_under_failure;
          Alcotest.test_case "empty group refuses" `Quick test_group_empty_refused;
          Alcotest.test_case "state survives deactivation" `Quick
            test_group_state_survives_deactivation;
        ] );
      ( "partitions",
        [ Alcotest.test_case "partition and heal" `Quick test_partition_and_heal ] );
    ]
