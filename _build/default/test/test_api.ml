(* Tests for the synchronous convenience layer (Legion.Api) and the
   System builder's contracts. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Binding = Legion_naming.Binding
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Well_known = Legion_core.Well_known
module System = Legion.System
module Api = Legion.Api
module H = Helpers

let test_boot_validation () =
  Alcotest.check_raises "no sites" (Invalid_argument "System.boot: no sites")
    (fun () -> ignore (Legion.System.boot ~sites:[] ()));
  Alcotest.check_raises "zero hosts"
    (Invalid_argument "System.boot: site needs >= 1 host") (fun () ->
      ignore (Legion.System.boot ~sites:[ ("a", 0) ] ()))

let test_boot_deterministic () =
  (* Same seed, same bootstrap message count. *)
  let count seed =
    H.register_counter_unit ();
    let sys = Legion.System.boot ~seed ~sites:[ ("a", 2); ("b", 2) ] () in
    Legion_net.Network.messages_sent (System.net sys)
  in
  Alcotest.(check int) "deterministic" (count 5L) (count 5L)

let test_sync_quiesce_failure () =
  let sys = H.boot_one_site () in
  match Api.sync sys (fun _k -> ()) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "sync must fail when the continuation never fires"

let test_call_exn_raises () =
  let sys = H.boot_one_site () in
  let ctx = System.client sys () in
  let ghost = Loid.make ~class_id:0x999L ~class_specific:1L () in
  match Api.call_exn sys ctx ~dst:ghost ~meth:"Ping" ~args:[] with
  | exception Api.Call_failed msg ->
      Alcotest.(check bool) "message names the method" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "ghost call should raise"

let test_create_on_instance_fails () =
  (* Create on a non-class object: the method does not exist there. *)
  let sys = H.boot_one_site () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let obj = Api.create_object_exn sys ctx ~cls ~eager:true () in
  match Api.create_object sys ctx ~cls:obj () with
  | Error (Err.No_such_method _) -> ()
  | r ->
      Alcotest.failf "expected no_such_method: %s"
        (match r with
        | Ok (l, _) -> Loid.to_string l
        | Error e -> Err.to_string e)

let test_get_binding_via_class_and_agent () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let obj = Api.create_object_exn sys ctx ~cls ~eager:true () in
  (* Via the class (the authority)... *)
  let b1 =
    match Api.get_binding sys ctx ~via:cls ~target:obj with
    | Ok b -> b
    | Error e -> Alcotest.failf "via class: %s" (Err.to_string e)
  in
  (* ...and via a Binding Agent (the cache): same address. *)
  let agent = (System.site sys 0).System.agent in
  let b2 =
    match Api.get_binding sys ctx ~via:agent ~target:obj with
    | Ok b -> b
    | Error e -> Alcotest.failf "via agent: %s" (Err.to_string e)
  in
  Alcotest.(check bool) "same address" true
    (Legion_naming.Address.equal (Binding.address b1) (Binding.address b2))

let test_derive_rejects_both_idls () =
  let sys = H.boot_one_site () in
  let ctx = System.client sys () in
  match
    Api.derive_class sys ctx ~parent:Well_known.legion_object ~name:"Both"
      ~idl:"interface Both { M(); }"
      ~mpl:"mentat class Both { void M(); }" ()
  with
  | Error (Err.Bad_args _) -> ()
  | Ok _ -> Alcotest.fail "accepted both interface sources"
  | Error e -> Alcotest.failf "unexpected: %s" (Err.to_string e)

let test_derive_bad_idl_rejected () =
  let sys = H.boot_one_site () in
  let ctx = System.client sys () in
  match
    Api.derive_class sys ctx ~parent:Well_known.legion_object ~name:"Bad"
      ~idl:"interface Bad { M(x int); }" ()
  with
  | Error (Err.Bad_args msg) ->
      Alcotest.(check bool) "mentions idl" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "accepted malformed IDL"
  | Error e -> Alcotest.failf "unexpected: %s" (Err.to_string e)

let test_delete_object_helper () =
  let sys = H.boot_one_site () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls ~eager:true () in
  (match Api.delete_object sys ctx ~cls ~loid with
  | Ok () -> ()
  | Error e -> Alcotest.failf "delete: %s" (Err.to_string e));
  match Api.call sys ctx ~dst:loid ~meth:"Get" ~args:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "deleted object answered"

let test_clients_are_isolated () =
  (* Each client gets its own LOID and cache; killing one does not
     disturb another. *)
  let sys = H.boot_one_site () in
  let c1 = System.client sys () in
  let c2 = System.client sys () in
  Alcotest.(check bool) "distinct loids" false
    (Loid.equal
       (Runtime.proc_loid c1.Runtime.self)
       (Runtime.proc_loid c2.Runtime.self));
  Runtime.kill (System.rt sys) c1.Runtime.self;
  let cls = H.make_counter_class sys c2 () in
  let obj = Api.create_object_exn sys c2 ~cls () in
  let v = H.int_exn (Api.call_exn sys c2 ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ]) in
  Alcotest.(check int) "surviving client works" 1 v

let test_fresh_instance_loids_distinct () =
  let sys = H.boot_one_site () in
  let a = System.fresh_instance_loid sys ~of_class:Well_known.legion_object in
  let b = System.fresh_instance_loid sys ~of_class:Well_known.legion_object in
  Alcotest.(check bool) "distinct" false (Loid.equal a b);
  Alcotest.(check int64) "class id follows" (Loid.class_id Well_known.legion_object)
    (Loid.class_id a);
  (* High range: never collides with class-allocated sequence numbers. *)
  Alcotest.(check bool) "high range" true
    (Int64.compare (Loid.class_specific a) 0x1_0000_0000L >= 0)

let () =
  Alcotest.run "api"
    [
      ( "system",
        [
          Alcotest.test_case "boot validation" `Quick test_boot_validation;
          Alcotest.test_case "boot deterministic" `Quick test_boot_deterministic;
          Alcotest.test_case "clients isolated" `Quick test_clients_are_isolated;
          Alcotest.test_case "fresh loids" `Quick test_fresh_instance_loids_distinct;
        ] );
      ( "api",
        [
          Alcotest.test_case "sync detects quiescence" `Quick test_sync_quiesce_failure;
          Alcotest.test_case "call_exn raises" `Quick test_call_exn_raises;
          Alcotest.test_case "Create on an instance" `Quick test_create_on_instance_fails;
          Alcotest.test_case "GetBinding via class and agent" `Quick
            test_get_binding_via_class_and_agent;
          Alcotest.test_case "both IDLs rejected" `Quick test_derive_rejects_both_idls;
          Alcotest.test_case "bad IDL rejected" `Quick test_derive_bad_idl_rejected;
          Alcotest.test_case "delete_object helper" `Quick test_delete_object_helper;
        ] );
    ]
